package reconcile

import (
	"math/rand"
	"testing"

	"ibvsim/internal/cloud"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

// testCloud builds the small fat-tree cloud the cloud package tests use:
// 16 CAs, CA 0 hosts the SM, the other 15 are hypervisors with 3 VFs each.
func testCloud(t *testing.T, model sriov.Model) *cloud.Cloud {
	t.Helper()
	topo, err := topology.BuildXGFT(topology.XGFTSpec{M: []int{4, 4}, W: []int{1, 4}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model:            model,
		VFsPerHypervisor: 3,
		Scheduler:        cloud.Spread{},
		RouteWorkers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func applyPlan(t *testing.T, c *cloud.Cloud, plan *Plan) []cloud.WaveReport {
	t.Helper()
	reps := make([]cloud.WaveReport, 0, len(plan.Waves))
	for i, wave := range plan.Waves {
		wr, err := c.MigrateWave(wave)
		if err != nil {
			t.Fatalf("wave %d: %v", i, err)
		}
		reps = append(reps, wr)
	}
	return reps
}

func occupied(c *cloud.Cloud) int {
	n := 0
	for _, hn := range c.Hypervisors() {
		if c.VMCountOn(hn) > 0 {
			n++
		}
	}
	return n
}

func TestParseGoal(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		err  bool
	}{
		{in: "defrag", want: Spec{Goal: GoalDefrag}},
		{in: "spread", want: Spec{Goal: GoalSpread}},
		{in: "drain:7", want: Spec{Goal: GoalDrain, Host: 7}},
		{in: "drain(7)", want: Spec{Goal: GoalDrain, Host: 7}},
		{in: "drain:x", err: true},
		{in: "drain", err: true},
		{in: "", err: true},
		{in: "consolidate", err: true},
	}
	for _, tc := range cases {
		got, err := ParseGoal(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseGoal(%q) error = %v, want error %v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && (got.Goal != tc.want.Goal || got.Host != tc.want.Host) {
			t.Errorf("ParseGoal(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestDryRunMatchesApplied is the fidelity contract: the shadow-simulated
// per-wave costs of a plan must equal, field for field, what actually hits
// the wire when the same waves are applied — switches updated, LFT SMPs
// (including block-run coalescing), host SMPs and modelled time — for every
// SR-IOV model.
func TestDryRunMatchesApplied(t *testing.T) {
	for _, model := range []sriov.Model{sriov.VSwitchPrepopulated, sriov.VSwitchDynamic, sriov.SharedPort} {
		t.Run(model.String(), func(t *testing.T) {
			c := testCloud(t, model)
			hyps := c.Hypervisors()
			// Fragment: 2 VMs on each of 6 hosts = 12 VMs, minimal is 4.
			for i := 0; i < 6; i++ {
				for j := 0; j < 2; j++ {
					name := "fr-" + string(rune('a'+i)) + string(rune('0'+j))
					if _, err := c.CreateVMOn(name, hyps[i*2]); err != nil {
						t.Fatal(err)
					}
				}
			}
			p := &Planner{C: c}
			plan, err := p.Plan(Spec{Goal: GoalDefrag})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Converged || len(plan.Waves) == 0 {
				t.Fatalf("fragmented cloud must plan waves, got %+v", plan)
			}
			reps := applyPlan(t, c, plan)
			for i, wr := range reps {
				pred := plan.Predicted[i]
				if wr.Plan.SwitchesUpdated != pred.SwitchesUpdated {
					t.Errorf("wave %d: switches applied %d != predicted %d", i, wr.Plan.SwitchesUpdated, pred.SwitchesUpdated)
				}
				if wr.Plan.SMPs != pred.LFTSMPs {
					t.Errorf("wave %d: LFT SMPs applied %d != predicted %d", i, wr.Plan.SMPs, pred.LFTSMPs)
				}
				if wr.Plan.InvalidationSMPs != pred.InvalidationSMPs {
					t.Errorf("wave %d: invalidation SMPs applied %d != predicted %d", i, wr.Plan.InvalidationSMPs, pred.InvalidationSMPs)
				}
				if wr.HostSMPs != pred.HostSMPs {
					t.Errorf("wave %d: host SMPs applied %d != predicted %d", i, wr.HostSMPs, pred.HostSMPs)
				}
				if wr.Plan.ModelledTime != pred.Modelled {
					t.Errorf("wave %d: modelled applied %v != predicted %v", i, wr.Plan.ModelledTime, pred.Modelled)
				}
			}
		})
	}
}

// TestPlanIdempotent: re-planning an achieved placement must converge with
// zero moves, for every goal.
func TestPlanIdempotent(t *testing.T) {
	c := testCloud(t, sriov.VSwitchPrepopulated)
	hyps := c.Hypervisors()
	for i := 0; i < 8; i++ {
		if _, err := c.CreateVMOn("vm-"+string(rune('a'+i)), hyps[i]); err != nil {
			t.Fatal(err)
		}
	}
	p := &Planner{C: c}

	for _, spec := range []Spec{
		{Goal: GoalDefrag},
		{Goal: GoalDrain, Host: hyps[0]},
		{Goal: GoalSpread},
	} {
		plan, err := p.Plan(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Goal, err)
		}
		applyPlan(t, c, plan)
		again, err := p.Plan(spec)
		if err != nil {
			t.Fatalf("%s re-plan: %v", spec.Goal, err)
		}
		if !again.Converged || len(again.Moves) != 0 {
			t.Fatalf("%s: re-planning the achieved state must converge, got %d moves", spec.Goal, len(again.Moves))
		}
	}
}

// TestConvergenceUnderChurn interleaves seeded create/destroy churn with
// reconciliation rounds and asserts every round converges: after apply, the
// plan is a fixpoint and occupancy is minimal. Runs under -race in CI.
func TestConvergenceUnderChurn(t *testing.T) {
	c := testCloud(t, sriov.VSwitchDynamic)
	hyps := c.Hypervisors()
	rng := rand.New(rand.NewSource(42))
	p := &Planner{C: c}
	next := 0
	live := []string{}

	for round := 0; round < 8; round++ {
		// Churn: a burst of random creations on random hosts plus some
		// destructions, leaving a fragmented layout.
		for i := 0; i < 6; i++ {
			hn := hyps[rng.Intn(len(hyps))]
			if c.VMCountOn(hn) >= 3 {
				continue
			}
			name := "churn-" + string(rune('a'+next%26)) + string(rune('0'+(next/26)%10))
			next++
			if _, err := c.CreateVMOn(name, hn); err != nil {
				t.Fatal(err)
			}
			live = append(live, name)
		}
		for i := 0; i < 3 && len(live) > 1; i++ {
			k := rng.Intn(len(live))
			if err := c.DestroyVM(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}

		plan, err := p.Plan(Spec{Goal: GoalDefrag})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		applyPlan(t, c, plan)

		again, err := p.Plan(Spec{Goal: GoalDefrag})
		if err != nil {
			t.Fatalf("round %d re-plan: %v", round, err)
		}
		if !again.Converged {
			t.Fatalf("round %d: reconcile did not converge (%d moves left)", round, len(again.Moves))
		}
		want := (len(live) + 2) / 3 // ceil(VMs / VFs-per-host)
		if got := occupied(c); got != want {
			t.Fatalf("round %d: occupied hosts = %d, want minimal %d (%d VMs)", round, got, want, len(live))
		}
	}
}

// TestDrainGoal empties the host and reports infeasibility honestly.
func TestDrainGoal(t *testing.T) {
	c := testCloud(t, sriov.VSwitchPrepopulated)
	hyps := c.Hypervisors()
	for i := 0; i < 3; i++ {
		if _, err := c.CreateVMOn("dr-"+string(rune('0'+i)), hyps[0]); err != nil {
			t.Fatal(err)
		}
	}
	p := &Planner{C: c}
	plan, err := p.Plan(Spec{Goal: GoalDrain, Host: hyps[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 3 {
		t.Fatalf("want 3 drain moves, got %d", len(plan.Moves))
	}
	applyPlan(t, c, plan)
	if got := c.VMCountOn(hyps[0]); got != 0 {
		t.Fatalf("host still has %d VMs after drain", got)
	}

	if _, err := p.Plan(Spec{Goal: GoalDrain, Host: topology.NodeID(99999)}); err == nil {
		t.Error("draining a non-hypervisor must fail")
	}
}

// TestSpreadGoal levels loads to within one VM.
func TestSpreadGoal(t *testing.T) {
	c := testCloud(t, sriov.VSwitchDynamic)
	hyps := c.Hypervisors()
	for i := 0; i < 3; i++ {
		if _, err := c.CreateVMOn("sp-a"+string(rune('0'+i)), hyps[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateVMOn("sp-b"+string(rune('0'+i)), hyps[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := &Planner{C: c}
	plan, err := p.Plan(Spec{Goal: GoalSpread})
	if err != nil {
		t.Fatal(err)
	}
	applyPlan(t, c, plan)
	min, max := 1<<30, 0
	for _, hn := range hyps {
		n := c.VMCountOn(hn)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("spread left load range [%d,%d]", min, max)
	}
}

// TestPlacementGoal applies an explicit map and validates it.
func TestPlacementGoal(t *testing.T) {
	c := testCloud(t, sriov.VSwitchPrepopulated)
	hyps := c.Hypervisors()
	if _, err := c.CreateVMOn("pl-a", hyps[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateVMOn("pl-b", hyps[1]); err != nil {
		t.Fatal(err)
	}
	p := &Planner{C: c}

	plan, err := p.Plan(Spec{Goal: GoalPlacement, Placement: map[string]topology.NodeID{
		"pl-a": hyps[5],
		"pl-b": hyps[1], // already there: no move
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].VM != "pl-a" {
		t.Fatalf("want one move for pl-a, got %+v", plan.Moves)
	}
	applyPlan(t, c, plan)
	if got := c.VM("pl-a").Hyp; got != hyps[5] {
		t.Fatalf("pl-a on %d, want %d", got, hyps[5])
	}

	if _, err := p.Plan(Spec{Goal: GoalPlacement, Placement: map[string]topology.NodeID{"ghost": hyps[0]}}); err == nil {
		t.Error("placement of unknown VM must fail")
	}
	over := map[string]topology.NodeID{}
	for i := 0; i < 2; i++ {
		name := "ov-" + string(rune('0'+i))
		if _, err := c.CreateVMOn(name, hyps[6+i]); err != nil {
			t.Fatal(err)
		}
		over[name] = hyps[5]
	}
	over["pl-b"] = hyps[5]
	// hyps[5] already hosts pl-a; 3 more arrivals overflow its 3 VFs.
	if _, err := p.Plan(Spec{Goal: GoalPlacement, Placement: over}); err == nil {
		t.Error("overfilling placement must fail")
	}
}
