package reconcile

import (
	"fmt"
	"sort"

	"ibvsim/internal/cloud"
	"ibvsim/internal/core"
	"ibvsim/internal/ib"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

// shadow is a copy-on-write overlay of the fabric state a migration wave
// reads and writes: programmed LFTs, LID ownership, per-hypervisor VF
// occupancy and per-VM placement. It satisfies core.PlanView, so wave N+1's
// plans are computed on the exact state wave N's merged distribution will
// leave behind — the prediction a dry run reports is byte-for-byte the cost
// an apply pays.
type shadow struct {
	c     *cloud.Cloud
	lfts  map[topology.NodeID]*ib.LFT    // written switches only
	owner map[ib.LID]topology.NodeID     // rebound LIDs only
	vfs   map[topology.NodeID][]vfShadow // every hypervisor
	vm    map[string]*vmShadow           // every VM
}

type vfShadow struct {
	lid      ib.LID
	attached bool
}

type vmShadow struct {
	hyp topology.NodeID
	vf  int
	lid ib.LID
}

func newShadow(c *cloud.Cloud) *shadow {
	sh := &shadow{
		c:     c,
		lfts:  map[topology.NodeID]*ib.LFT{},
		owner: map[ib.LID]topology.NodeID{},
		vfs:   map[topology.NodeID][]vfShadow{},
		vm:    map[string]*vmShadow{},
	}
	for _, hn := range c.Hypervisors() {
		h := c.Hypervisor(hn)
		list := make([]vfShadow, len(h.HCA.VFs))
		for i := range h.HCA.VFs {
			list[i] = vfShadow{h.HCA.VFs[i].LID, h.HCA.VFs[i].Attached}
		}
		sh.vfs[hn] = list
	}
	for _, name := range c.VMs() {
		v := c.VM(name)
		sh.vm[name] = &vmShadow{v.Hyp, v.VF, v.Addr.LID}
	}
	return sh
}

// ProgrammedLFT implements core.PlanView.
func (s *shadow) ProgrammedLFT(sw topology.NodeID) *ib.LFT {
	if l := s.lfts[sw]; l != nil {
		return l
	}
	return s.c.SM.ProgrammedLFT(sw)
}

// NodeOfLID implements core.PlanView.
func (s *shadow) NodeOfLID(l ib.LID) topology.NodeID {
	if n, ok := s.owner[l]; ok {
		return n
	}
	return s.c.SM.NodeOfLID(l)
}

// writableLFT returns the switch's overlay table, cloning the live one on
// first write.
func (s *shadow) writableLFT(sw topology.NodeID) *ib.LFT {
	if l := s.lfts[sw]; l != nil {
		return l
	}
	base := s.c.SM.ProgrammedLFT(sw)
	if base == nil {
		return nil
	}
	cl := base.Clone()
	s.lfts[sw] = cl
	return cl
}

func (s *shadow) attached(hn topology.NodeID) int {
	n := 0
	for _, vf := range s.vfs[hn] {
		if vf.attached {
			n++
		}
	}
	return n
}

func (s *shadow) capacity(hn topology.NodeID) int { return len(s.vfs[hn]) }

// countRuns replicates the distribution engine's SMP packing: ascending
// dirty blocks, adjacent blocks share one SMP up to max per run (max < 1
// means one block per SMP — the engine default).
func countRuns(blocks []int, max int) int {
	if max < 1 {
		max = 1
	}
	runs, runLen, prev := 0, 0, -2
	for _, b := range blocks {
		if runs > 0 && b == prev+1 && runLen < max {
			runLen++
			prev = b
			continue
		}
		runs++
		runLen = 1
		prev = b
	}
	return runs
}

// simulateWave plans every move of the wave against the shadow state,
// merges the plans, predicts the merged distribution's cost exactly as
// ApplyEdits+SetLFTEntries would account it, and then applies the wave's
// effects to the shadow: LFT edits, LID rebinds, VF detach/attach.
func (p *Planner) simulateWave(sh *shadow, wave []cloud.Move) (StepCost, error) {
	rc := p.C.RC
	type planned struct {
		mv   cloud.Move
		st   *vmShadow
		vf   int
		plan *core.MigrationPlan
	}
	reserved := map[topology.NodeID]map[int]bool{}
	var pms []planned
	var plans []*core.MigrationPlan
	for _, mv := range wave {
		st := sh.vm[mv.VM]
		if st == nil {
			return StepCost{}, fmt.Errorf("reconcile: no VM %q", mv.VM)
		}
		if reserved[mv.To] == nil {
			reserved[mv.To] = map[int]bool{}
		}
		dstVF := -1
		for i, vf := range sh.vfs[mv.To] {
			if !vf.attached && !reserved[mv.To][i] {
				dstVF = i
				break
			}
		}
		if dstVF < 0 {
			return StepCost{}, fmt.Errorf("reconcile: destination %d has no free VF for %q", mv.To, mv.VM)
		}
		reserved[mv.To][dstVF] = true
		var plan *core.MigrationPlan
		var err error
		switch p.C.Model {
		case sriov.VSwitchPrepopulated:
			plan, err = rc.PlanSwapOn(sh, st.lid, sh.vfs[mv.To][dstVF].lid)
		case sriov.VSwitchDynamic:
			plan, err = rc.PlanCopyOn(sh, st.lid, p.C.SM.LIDOf(mv.To))
		case sriov.SharedPort:
			// no LFT updates
		default:
			err = fmt.Errorf("reconcile: unknown SR-IOV model %v", p.C.Model)
		}
		if err != nil {
			return StepCost{}, err
		}
		if plan != nil {
			plans = append(plans, plan)
		}
		pms = append(pms, planned{mv, st, dstVF, plan})
	}

	cost := StepCost{HostSMPs: 2 * len(wave)}
	if len(plans) > 0 {
		merged, err := core.MergePlans(plans...)
		if err != nil {
			return StepCost{}, err
		}
		maxRun := p.C.SM.Dist.MaxBlocksPerSMP
		for sw, changes := range merged.Updates {
			cost.SwitchesUpdated++
			blockSet := map[int]bool{}
			for l := range changes {
				blockSet[ib.BlockOf(l)] = true
			}
			blocks := make([]int, 0, len(blockSet))
			for b := range blockSet {
				blocks = append(blocks, b)
			}
			sort.Ints(blocks)
			cost.LFTSMPs += countRuns(blocks, maxRun)
			if rc.Mitigation == core.MitigationInvalidate {
				if lft := sh.ProgrammedLFT(sw); lft != nil && lft.Get(merged.VMLID) != ib.DropPort {
					cost.InvalidationSMPs++
				}
			}
		}
		cost.Modelled = p.C.SM.Cost.DistributionTime(cost.LFTSMPs+cost.InvalidationSMPs, rc.Mode)
		if rc.Mitigation == core.MitigationDrain {
			cost.Modelled += rc.DrainTime
		}
		// Commit the merged edits to the shadow LFTs.
		for sw, changes := range merged.Updates {
			lft := sh.writableLFT(sw)
			if lft == nil {
				return StepCost{}, fmt.Errorf("reconcile: switch %d not programmed", sw)
			}
			for l, pt := range changes {
				lft.Set(l, pt)
			}
		}
	}

	// Per-move shadow bookkeeping, mirroring finishWaveMove.
	for _, m := range pms {
		src, dst := m.st.hyp, m.mv.To
		switch p.C.Model {
		case sriov.VSwitchPrepopulated:
			destLID := sh.vfs[dst][m.vf].lid
			sh.owner[m.st.lid] = dst
			sh.owner[destLID] = src
			// The LIDs physically swap between the two VFs.
			sh.vfs[src][m.st.vf] = vfShadow{lid: destLID, attached: false}
			sh.vfs[dst][m.vf] = vfShadow{lid: m.st.lid, attached: true}
		case sriov.VSwitchDynamic:
			sh.owner[m.st.lid] = dst
			sh.vfs[src][m.st.vf] = vfShadow{lid: ib.LIDUnassigned, attached: false}
			sh.vfs[dst][m.vf] = vfShadow{lid: m.st.lid, attached: true}
		case sriov.SharedPort:
			sh.vfs[src][m.st.vf].attached = false
			sh.vfs[dst][m.vf].attached = true
			m.st.lid = p.C.Hypervisor(dst).HCA.PFLID // the VM adopts the PF's LID
		}
		m.st.hyp, m.st.vf = dst, m.vf
	}
	return cost, nil
}
