// Package reconcile turns the cloud's imperative migration primitives into
// a declarative placement layer: clients state a *desired placement* — an
// explicit VM→hypervisor map or a goal like drain(host), defrag or spread —
// and the planner diffs it against current state, then compiles an ordered
// sequence of migration waves that reaches it.
//
// The plan minimises reconfiguration cost along the paper's axes: moves are
// ordered leaf-local first (a section VI-D intra-leaf migration touches the
// fewest switches), each wave's LFT edits are merged into one distribution
// (so edits sharing a switch's 64-LID block cost one SMP — section VI-B's
// n' < n effect compounded across moves), and waves are packed as large as
// destination-VF capacity allows, so a whole defragmentation costs a few
// distribution waves instead of one per VM.
//
// Cost prediction runs against a shadow copy of the fabric (LFT overlays +
// LID ownership + VF occupancy), so wave N+1 is planned on the state wave N
// leaves behind, and a dry run reports exactly the SMP counts an apply
// would: the planner replicates the distribution layer's block-run
// coalescing over its predicted per-switch edits.
package reconcile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ibvsim/internal/cloud"
	"ibvsim/internal/core"
	"ibvsim/internal/topology"
)

// Goal is a declarative placement objective.
type Goal string

const (
	// GoalDefrag consolidates VMs onto the minimal number of hypervisors
	// (the paper's "optimization of fragmented networks", section V-B).
	GoalDefrag Goal = "defrag"
	// GoalSpread levels VM counts across all hypervisors to within one.
	GoalSpread Goal = "spread"
	// GoalDrain empties one hypervisor (Spec.Host), e.g. for maintenance.
	GoalDrain Goal = "drain"
	// GoalPlacement applies an explicit VM→hypervisor map (Spec.Placement).
	GoalPlacement Goal = "placement"
)

// Spec is a desired placement.
type Spec struct {
	Goal Goal
	// Host is the hypervisor to empty under GoalDrain.
	Host topology.NodeID
	// Placement is the explicit map under GoalPlacement. VMs not listed
	// stay where they are.
	Placement map[string]topology.NodeID
}

// ParseGoal parses the goal DSL used on the wire: "defrag", "spread",
// "drain:<node>" (also accepted as "drain(<node>)").
func ParseGoal(s string) (Spec, error) {
	switch {
	case s == string(GoalDefrag):
		return Spec{Goal: GoalDefrag}, nil
	case s == string(GoalSpread):
		return Spec{Goal: GoalSpread}, nil
	case strings.HasPrefix(s, "drain:"), strings.HasPrefix(s, "drain(") && strings.HasSuffix(s, ")"):
		arg := strings.TrimPrefix(s, "drain:")
		arg = strings.TrimSuffix(strings.TrimPrefix(arg, "drain("), ")")
		n, err := strconv.Atoi(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("reconcile: bad drain host %q: %v", arg, err)
		}
		return Spec{Goal: GoalDrain, Host: topology.NodeID(n)}, nil
	default:
		return Spec{}, fmt.Errorf("reconcile: unknown goal %q (want defrag, spread or drain:<node>)", s)
	}
}

// Move is one planned migration, annotated for reporting.
type Move struct {
	VM       string
	From, To topology.NodeID
	// Wave is the index of the distribution wave the move rides.
	Wave int
	// LeafLocal marks moves that stay under one leaf switch — the cheapest
	// reconfigurations (section VI-D); the planner schedules them first.
	LeafLocal bool
}

// StepCost is the predicted cost of one wave, in the same vocabulary as the
// control plane's per-mutation CostReports.
type StepCost struct {
	SwitchesUpdated  int
	LFTSMPs          int
	InvalidationSMPs int
	HostSMPs         int
	Modelled         time.Duration
}

func (c *StepCost) add(o StepCost) {
	c.SwitchesUpdated += o.SwitchesUpdated
	c.LFTSMPs += o.LFTSMPs
	c.InvalidationSMPs += o.InvalidationSMPs
	c.HostSMPs += o.HostSMPs
	c.Modelled += o.Modelled
}

// Plan is a compiled reconciliation: ordered waves plus their predicted
// costs. Converged means the desired placement already holds.
type Plan struct {
	Goal      Goal
	Moves     []Move
	Waves     [][]cloud.Move // execute each with Cloud.MigrateWave, in order
	Predicted []StepCost     // one per wave
	Total     StepCost
	Converged bool
}

// Planner compiles placement specs against a cloud.
type Planner struct {
	C *cloud.Cloud
}

// Plan diffs the spec's desired placement against current state and
// compiles the migration waves. The cloud is not mutated.
func (p *Planner) Plan(spec Spec) (*Plan, error) {
	moves, err := p.desired(spec)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Goal: spec.Goal}
	if len(moves) == 0 {
		plan.Converged = true
		return plan, nil
	}

	// Order: leaf-local moves first, then by VM name — deterministic, and
	// the early waves are the cheap intra-leaf reconfigurations.
	leaf := func(n topology.NodeID) topology.NodeID { return p.C.SM.Topo.LeafSwitchOf(n) }
	ann := make([]Move, 0, len(moves))
	for _, mv := range moves {
		vm := p.C.VM(mv.VM)
		if vm == nil {
			return nil, fmt.Errorf("reconcile: no VM %q", mv.VM)
		}
		ann = append(ann, Move{
			VM:        mv.VM,
			From:      vm.Hyp,
			To:        mv.To,
			LeafLocal: leaf(vm.Hyp) == leaf(mv.To),
		})
	}
	sort.Slice(ann, func(i, j int) bool {
		if ann[i].LeafLocal != ann[j].LeafLocal {
			return ann[i].LeafLocal
		}
		return ann[i].VM < ann[j].VM
	})

	// Group into waves with the same admission rule ExecuteMoves uses —
	// a move is admitted once its destination has an unreserved free VF in
	// the *shadow* state, so capacity freed by earlier waves is credited —
	// and predict each wave's cost on the shadow fabric.
	sh := newShadow(p.C)
	pending := ann
	for len(pending) > 0 {
		reserved := map[topology.NodeID]int{}
		var wave []Move
		var rest []Move
		for i, mv := range pending {
			if sh.attached(mv.To)+reserved[mv.To] >= sh.capacity(mv.To) {
				rest = append(rest, mv)
				continue
			}
			reserved[mv.To]++
			wave = append(wave, mv)
			if p.C.RC.Mitigation == core.MitigationInvalidate {
				// Merged multi-move distributions are illegal under the
				// port-255 pre-pass; degrade to single-move waves.
				rest = append(rest, pending[i+1:]...)
				break
			}
		}
		if len(wave) == 0 {
			return nil, fmt.Errorf("reconcile: placement infeasible: no pending destination has a free VF (%d moves stuck)", len(pending))
		}
		cm := make([]cloud.Move, len(wave))
		for i, mv := range wave {
			cm[i] = cloud.Move{VM: mv.VM, To: mv.To}
		}
		cost, err := p.simulateWave(sh, cm)
		if err != nil {
			return nil, err
		}
		for i := range wave {
			wave[i].Wave = len(plan.Waves)
		}
		plan.Moves = append(plan.Moves, wave...)
		plan.Waves = append(plan.Waves, cm)
		plan.Predicted = append(plan.Predicted, cost)
		plan.Total.add(cost)
		pending = rest
	}
	return plan, nil
}

// desired computes the move list that realises the spec.
func (p *Planner) desired(spec Spec) ([]cloud.Move, error) {
	switch spec.Goal {
	case GoalDefrag:
		return p.C.DefragPlan(), nil
	case GoalDrain:
		return p.drainMoves(spec.Host)
	case GoalSpread:
		return p.spreadMoves(), nil
	case GoalPlacement:
		return p.placementMoves(spec.Placement)
	default:
		return nil, fmt.Errorf("reconcile: unknown goal %q", spec.Goal)
	}
}

// drainMoves empties one hypervisor, packing its VMs onto the remaining
// hosts: same-leaf receivers first, then the most loaded host with space.
func (p *Planner) drainMoves(host topology.NodeID) ([]cloud.Move, error) {
	if p.C.Hypervisor(host) == nil {
		return nil, fmt.Errorf("reconcile: drain target %d is not a hypervisor", host)
	}
	hostLeaf := p.C.SM.Topo.LeafSwitchOf(host)
	load := map[topology.NodeID]int{}
	free := map[topology.NodeID]int{}
	for _, hn := range p.C.Hypervisors() {
		h := p.C.Hypervisor(hn)
		load[hn] = len(h.HCA.AttachedVFs())
		free[hn] = h.HCA.NumVFs() - load[hn]
	}
	var moves []cloud.Move
	for _, name := range p.C.VMs() { // sorted
		vm := p.C.VM(name)
		if vm.Hyp != host {
			continue
		}
		recv := topology.NoNode
		recvLocal := false
		for _, hn := range p.C.Hypervisors() {
			if hn == host || free[hn] <= 0 {
				continue
			}
			local := p.C.SM.Topo.LeafSwitchOf(hn) == hostLeaf
			switch {
			case recv == topology.NoNode,
				local && !recvLocal,
				local == recvLocal && load[hn] > load[recv],
				local == recvLocal && load[hn] == load[recv] && hn < recv:
				recv, recvLocal = hn, local
			}
		}
		if recv == topology.NoNode {
			return nil, fmt.Errorf("reconcile: draining %d is infeasible: no free VF for VM %q", host, name)
		}
		moves = append(moves, cloud.Move{VM: name, To: recv})
		free[recv]--
		load[recv]++
	}
	return moves, nil
}

// spreadMoves levels VM counts across hypervisors to within one, moving VMs
// from the most loaded host to the least loaded (same-leaf receivers break
// ties) until balanced.
func (p *Planner) spreadMoves() []cloud.Move {
	load := map[topology.NodeID]int{}
	vmsOn := map[topology.NodeID][]string{}
	for _, hn := range p.C.Hypervisors() {
		load[hn] = 0
	}
	for _, name := range p.C.VMs() { // sorted: deterministic donations
		vm := p.C.VM(name)
		load[vm.Hyp]++
		vmsOn[vm.Hyp] = append(vmsOn[vm.Hyp], name)
	}
	var moves []cloud.Move
	for {
		maxH, minH := topology.NoNode, topology.NoNode
		for _, hn := range p.C.Hypervisors() {
			if maxH == topology.NoNode || load[hn] > load[maxH] {
				maxH = hn
			}
			if minH == topology.NoNode || load[hn] < load[minH] {
				minH = hn
			}
		}
		if maxH == topology.NoNode || load[maxH]-load[minH] <= 1 {
			return moves
		}
		// Prefer a same-leaf receiver among the minimally loaded hosts.
		donorLeaf := p.C.SM.Topo.LeafSwitchOf(maxH)
		for _, hn := range p.C.Hypervisors() {
			if load[hn] == load[minH] && p.C.SM.Topo.LeafSwitchOf(hn) == donorLeaf && hn != maxH {
				minH = hn
				break
			}
		}
		names := vmsOn[maxH]
		name := names[len(names)-1]
		vmsOn[maxH] = names[:len(names)-1]
		vmsOn[minH] = append(vmsOn[minH], name)
		moves = append(moves, cloud.Move{VM: name, To: minH})
		load[maxH]--
		load[minH]++
	}
}

// placementMoves validates an explicit map and returns the diff against
// current placement.
func (p *Planner) placementMoves(want map[string]topology.NodeID) ([]cloud.Move, error) {
	if len(want) == 0 {
		return nil, fmt.Errorf("reconcile: empty placement map")
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)

	// Final feasibility: every host's end load must fit its VF count.
	final := map[topology.NodeID]int{}
	for _, hn := range p.C.Hypervisors() {
		final[hn] = p.C.VMCountOn(hn)
	}
	var moves []cloud.Move
	for _, name := range names {
		vm := p.C.VM(name)
		if vm == nil {
			return nil, fmt.Errorf("reconcile: no VM %q", name)
		}
		dst := want[name]
		if p.C.Hypervisor(dst) == nil {
			return nil, fmt.Errorf("reconcile: placement of %q: %d is not a hypervisor", name, dst)
		}
		if dst == vm.Hyp {
			continue
		}
		final[vm.Hyp]--
		final[dst]++
		moves = append(moves, cloud.Move{VM: name, To: dst})
	}
	for _, hn := range p.C.Hypervisors() {
		if cap := p.C.Hypervisor(hn).HCA.NumVFs(); final[hn] > cap {
			return nil, fmt.Errorf("reconcile: placement overfills hypervisor %d (%d VMs, %d VFs)", hn, final[hn], cap)
		}
	}
	return moves, nil
}
