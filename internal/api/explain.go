package api

import (
	"net/http"

	"ibvsim/internal/ib"
	"ibvsim/internal/topology"
)

// ExplainHop is one switch traversal of an explained path: the egress the
// programmed LFT gives the destination LID, plus the provenance stamp of the
// 64-LID block that entry lives in — which mutation, span, engine and phase
// installed the forwarding decision this hop follows.
type ExplainHop struct {
	Switch topology.NodeID `json:"switch"`
	Desc   string          `json:"desc"`
	Egress ib.PortNum      `json:"egress_port"`
	// Provenance is nil when the block predates the provenance plane (or
	// provenance collection is disabled); such hops count as Unknown.
	Provenance *ib.Provenance `json:"provenance,omitempty"`
}

// ExplainSpan links an attributed hop into the reconfiguration trace: the
// span named by a hop's provenance, resolved from the live tracer so the
// response is self-contained (the full tree is at /v1/trace).
type ExplainSpan struct {
	ID         int            `json:"id"`
	Kind       string         `json:"kind"`
	Name       string         `json:"name,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	ModelledNS int64          `json:"modelled_ns"`
}

// ExplainResponse answers GET /v1/explain?src=&dst=: the same LFT walk as
// /v1/paths, with every hop attributed to the operation that wrote it.
type ExplainResponse struct {
	Src        string          `json:"src"`
	Dst        string          `json:"dst"`
	SrcNode    topology.NodeID `json:"src_node"`
	DstNode    topology.NodeID `json:"dst_node"`
	DstLID     uint16          `json:"dst_lid"`
	Generation uint64          `json:"generation"`
	Hops       []ExplainHop    `json:"hops"`
	Attributed int             `json:"attributed"`
	Unknown    int             `json:"unknown"`
	// Error reports a walk that ended early (drop, down port, loop); the
	// hops reached before the failure are still attributed above.
	Error string `json:"error,omitempty"`
	// Spans appears with ?format=trace: the distinct trace spans the hops'
	// provenance names, so the answer to "who routed me this way" links
	// straight into the /v1/trace tree.
	Spans []ExplainSpan `json:"spans,omitempty"`
}

// Explain walks dst's LID through the snapshot exactly like Path and
// attributes each hop to the provenance stamp of the LFT block the egress
// decision came from. The walk error (if any) is carried in the response
// rather than failing it: a partially explained path is still evidence.
func (sn *Snapshot) Explain(src, dst string) (ExplainResponse, error) {
	pr, err := sn.Path(src, dst)
	resp := ExplainResponse{
		Src: pr.Src, Dst: pr.Dst,
		SrcNode: pr.SrcNode, DstNode: pr.DstNode,
		DstLID: pr.DstLID, Generation: pr.Generation,
		Hops: []ExplainHop{},
	}
	if err != nil && len(pr.Hops) == 0 && pr.DstLID == 0 {
		return resp, err // endpoint resolution failed: nothing to explain
	}
	for _, h := range pr.Hops {
		hop := ExplainHop{Switch: h.Switch, Desc: h.Desc, Egress: h.Egress}
		if lft := sn.lfts[h.Switch]; lft != nil {
			hop.Provenance = lft.ProvenanceOf(ib.LID(pr.DstLID))
		}
		if hop.Provenance != nil {
			resp.Attributed++
		} else {
			resp.Unknown++
		}
		resp.Hops = append(resp.Hops, hop)
	}
	if err != nil {
		resp.Error = err.Error()
	}
	return resp, nil
}

// attachSpans resolves the distinct span IDs the hops' provenance names
// into ExplainSpan records (?format=trace).
func (s *Server) attachSpans(resp *ExplainResponse) {
	want := map[int]bool{}
	for _, h := range resp.Hops {
		if h.Provenance != nil && h.Provenance.Span > 0 {
			want[h.Provenance.Span] = true
		}
	}
	if len(want) == 0 {
		return
	}
	for _, sv := range s.tr.SpansSince(0) {
		if !want[sv.ID] {
			continue
		}
		resp.Spans = append(resp.Spans, ExplainSpan{
			ID: sv.ID, Kind: string(sv.Kind), Name: sv.Name,
			Attrs: sv.Attrs, ModelledNS: sv.Modelled.Nanoseconds(),
		})
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, dst := q.Get("src"), q.Get("dst")
	if src == "" || dst == "" {
		writeErr(w, http.StatusBadRequest, "explain needs ?src= and ?dst= (VM name or node ID)")
		return
	}
	format := q.Get("format")
	if format != "" && format != "trace" {
		writeErr(w, http.StatusBadRequest, "unknown explain format %q (want trace)", format)
		return
	}
	sn := s.snapshot()
	resp, err := sn.Explain(src, dst)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if format == "trace" {
		s.attachSpans(&resp)
	}
	writeJSON(w, http.StatusOK, resp)
}
