package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ibvsim/internal/cloud"
	"ibvsim/internal/routing"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

// newShardedServer boots a 324-node paper fat tree (prepopulated, 2 VFs per
// hypervisor) behind a sharded Server.
func newShardedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	topo, err := topology.BuildPaperFatTree(324)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := routing.New("minhop")
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model:            sriov.VSwitchPrepopulated,
		VFsPerHypervisor: 2,
		Engine:           eng,
		Scheduler:        cloud.Spread{},
		RouteWorkers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background()) //nolint:errcheck
	})
	return srv, ts
}

// TestShardedEndpoints exercises the full endpoint surface in sharded mode:
// every response shape matches single-actor mode, the topology reports
// per-shard stats and zones, and cross-shard migration keeps the audit clean.
func TestShardedEndpoints(t *testing.T) {
	_, ts := newShardedServer(t, Config{Shards: 2})
	client := ts.Client()

	var topoResp TopologyResponse
	if st := doJSON(t, client, "GET", ts.URL+"/v1/topology", nil, &topoResp); st != http.StatusOK {
		t.Fatalf("topology: status %d", st)
	}
	if topoResp.Shards != 2 || len(topoResp.ShardStats) != 2 {
		t.Fatalf("topology shards = %d, stats = %d, want 2/2", topoResp.Shards, len(topoResp.ShardStats))
	}
	// Find one hypervisor per zone for an explicit cross-shard migration.
	byZone := map[int]topology.NodeID{}
	for _, h := range topoResp.Hypervisors {
		if _, ok := byZone[h.Zone]; !ok {
			byZone[h.Zone] = h.Node
		}
	}
	if len(byZone) != 2 {
		t.Fatalf("hypervisors span %d zones, want 2", len(byZone))
	}

	var created VMResponse
	req := CreateVMRequest{Name: "vm0", Hypervisor: ptr(byZone[0])}
	if st := doJSON(t, client, "POST", ts.URL+"/v1/vms", req, &created); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if created.Node != byZone[0] {
		t.Fatalf("created on node %d, want %d", created.Node, byZone[0])
	}

	var mig MigrateResponse
	if st := doJSON(t, client, "POST", ts.URL+"/v1/vms/vm0/migrate",
		MigrateVMRequest{Destination: byZone[1]}, &mig); st != http.StatusOK {
		t.Fatalf("cross-shard migrate: status %d", st)
	}
	if mig.To != byZone[1] {
		t.Fatalf("migrated to %d, want %d", mig.To, byZone[1])
	}
	if mig.Cost.SwitchesUpdated == 0 {
		t.Fatal("cross-shard migrate cost report is empty")
	}

	var got VMInfo
	if st := doJSON(t, client, "GET", ts.URL+"/v1/vms/vm0", nil, &got); st != http.StatusOK || got.Node != byZone[1] {
		t.Fatalf("get after migrate: status %d node %d", st, got.Node)
	}

	var audit map[string]any
	if st := doJSON(t, client, "GET", ts.URL+"/v1/audit?run=full", nil, &audit); st != http.StatusOK {
		t.Fatalf("audit: status %d", st)
	}
	if v := audit["violations_total"]; v != float64(0) {
		t.Fatalf("audit violations = %v, want 0", v)
	}

	var health map[string]any
	if st := doJSON(t, client, "GET", ts.URL+"/healthz", nil, &health); st != http.StatusOK {
		t.Fatalf("healthz: status %d", st)
	}
	if health["shards"] != float64(2) {
		t.Fatalf("healthz shards = %v, want 2", health["shards"])
	}

	if st := doJSON(t, client, "DELETE", ts.URL+"/v1/vms/vm0", nil, nil); st != http.StatusOK {
		t.Fatalf("destroy: status %d", st)
	}
	// Duplicate destroy surfaces 404 through the shard error mapping.
	if st := doJSON(t, client, "DELETE", ts.URL+"/v1/vms/vm0", nil, nil); st != http.StatusNotFound {
		t.Fatalf("double destroy: status %d, want 404", st)
	}
}

// TestShardedBackpressure429 pins the queue-saturation contract: a saturated
// shard queue answers 429 with a Retry-After header instead of blocking.
func TestShardedBackpressure429(t *testing.T) {
	srv, ts := newShardedServer(t, Config{Shards: 2, QueueDepth: 1})
	client := ts.Client()
	co := srv.Coordinator()
	hyp := co.Part.Zones[0].Hyps[0]

	frozen := make(chan struct{})
	thaw := make(chan struct{})
	go co.Freeze(func() { close(frozen); <-thaw }) //nolint:errcheck
	<-frozen

	firstDone := make(chan int, 1)
	go func() {
		st, _ := doJSONE(client, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "a", Hypervisor: ptr(hyp)}, nil)
		firstDone <- st
	}()
	deadline := time.After(5 * time.Second)
	for co.QueueLen() == 0 {
		select {
		case <-deadline:
			t.Fatal("first create never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	reqBody := CreateVMRequest{Name: "b", Hypervisor: ptr(hyp)}
	resp := doRaw(t, client, "POST", ts.URL+"/v1/vms", reqBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated create: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(thaw)
	if st := <-firstDone; st != http.StatusCreated {
		t.Fatalf("queued create after thaw: status %d", st)
	}
}

// TestShardedReconfigure runs a fabric-wide reroute under the coordinator
// freeze and checks reads pick up the new generation.
func TestShardedReconfigure(t *testing.T) {
	_, ts := newShardedServer(t, Config{Shards: 2})
	client := ts.Client()

	var before TopologyResponse
	doJSON(t, client, "GET", ts.URL+"/v1/topology", nil, &before)

	var rec map[string]any
	if st := doJSON(t, client, "POST", ts.URL+"/v1/reconfigure", map[string]string{"engine": "minhop"}, &rec); st != http.StatusOK {
		t.Fatalf("reconfigure: status %d: %v", st, rec)
	}

	var after TopologyResponse
	doJSON(t, client, "GET", ts.URL+"/v1/topology", nil, &after)
	if after.Generation <= before.Generation {
		t.Fatalf("generation %d after reconfigure, want > %d", after.Generation, before.Generation)
	}
}

func ptr[T any](v T) *T { return &v }

// doRaw issues one JSON request and returns the raw response (body closed),
// for tests that need response headers.
func doRaw(t *testing.T, client *http.Client, method, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp
}

// TestShardedEventsSSEResume checks SSE reconnect semantics under a sharded
// control plane: a client that disconnects and resumes with Last-Event-ID
// receives every event it missed exactly once — no gaps (the tracer's event
// seqs are contiguous, so the first resumed id must directly follow the last
// one seen) and no duplicates.
func TestShardedEventsSSEResume(t *testing.T) {
	_, ts := newShardedServer(t, Config{Shards: 2})
	cl := ts.Client()

	create := func(name string) {
		t.Helper()
		if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: name}, nil); st != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, st)
		}
	}

	// tail opens /v1/events (resuming after lastID when > 0) and reads
	// until an event's data mentions marker, returning the ids seen in order.
	tail := func(lastID int, marker string) []int {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
		}
		resp, err := cl.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ids []int
		id := -1
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "id: "); ok {
				if id, err = strconv.Atoi(v); err != nil {
					t.Fatalf("bad SSE id line %q: %v", line, err)
				}
				ids = append(ids, id)
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok && strings.Contains(data, marker) {
				return ids
			}
		}
		t.Fatalf("stream ended before %q (scan err: %v, ctx err: %v)", marker, sc.Err(), ctx.Err())
		return nil
	}

	for i := 0; i < 3; i++ {
		create(fmt.Sprintf("sse-a%d", i))
	}
	first := tail(0, `created VM "sse-a2"`)
	last := first[len(first)-1]

	// Events produced while disconnected must all arrive on resume.
	for i := 0; i < 3; i++ {
		create(fmt.Sprintf("sse-b%d", i))
	}
	resumed := tail(last, `created VM "sse-b2"`)

	if resumed[0] != last+1 {
		t.Fatalf("resume gap: stream restarted at id %d, want %d", resumed[0], last+1)
	}
	for i, id := range resumed {
		if id <= last {
			t.Fatalf("duplicate event %d (already seen before Last-Event-ID %d)", id, last)
		}
		if i > 0 && id != resumed[i-1]+1 {
			t.Fatalf("gap in resumed stream: %d follows %d", id, resumed[i-1])
		}
	}
}
