package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ibvsim/internal/cloud"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

// newTestServer boots a ring fabric cloud and wraps it in a Server +
// httptest.Server. Every CA but the first (the SM) becomes a hypervisor.
func newTestServer(t *testing.T, switches, casPer, vfs int, model sriov.Model, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	topo, err := topology.BuildRing(switches, casPer)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model:            model,
		VFsPerHypervisor: vfs,
		RouteWorkers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return srv, ts
}

// doJSONE issues a request with a JSON body and decodes a JSON response.
// Error-returning so it is callable from non-test goroutines.
func doJSONE(client *http.Client, method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decoding response: %w", method, url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode, nil
}

// doJSON is doJSONE with request failures fatal (test goroutine only).
func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	st, err := doJSONE(client, method, url, body, out)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLifecycleAndErrors(t *testing.T) {
	srv, ts := newTestServer(t, 6, 2, 2, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps

	// Create (scheduler placement), then a pinned create.
	var created VMResponse
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "alpha"}, &created); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if created.LID == 0 || created.Cost.LFTSMPs == 0 || created.Cost.SpanSMPs != created.Cost.LFTSMPs {
		t.Fatalf("create cost report not populated: %+v", created.Cost)
	}
	pin := hyps[len(hyps)-1].Node
	var pinned VMResponse
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "beta", Hypervisor: &pin}, &pinned); st != http.StatusCreated {
		t.Fatalf("pinned create: status %d", st)
	}
	if pinned.Node != pin {
		t.Fatalf("pinned create landed on %d, want %d", pinned.Node, pin)
	}

	// Reads observe the writes (snapshot published before reply).
	var list struct {
		Generation uint64   `json:"generation"`
		VMs        []VMInfo `json:"vms"`
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/vms", nil, &list); st != http.StatusOK || len(list.VMs) != 2 {
		t.Fatalf("list: status %d, %d VMs", st, len(list.VMs))
	}
	var got VMInfo
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/vms/alpha", nil, &got); st != http.StatusOK || got.Name != "alpha" {
		t.Fatalf("get: status %d, %+v", st, got)
	}

	// Path between the two VMs walks programmed LFTs.
	var path PathResponse
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/paths/alpha/beta", nil, &path); st != http.StatusOK {
		t.Fatalf("path: status %d", st)
	}
	if len(path.Hops) == 0 && path.SrcNode != path.DstNode {
		t.Fatalf("path between distinct nodes has no hops: %+v", path)
	}

	// Migrate and check the cost report fields.
	var mig MigrateResponse
	dst := hyps[len(hyps)-2].Node
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/alpha/migrate", MigrateVMRequest{Destination: dst}, &mig); st != http.StatusOK {
		t.Fatalf("migrate: status %d", st)
	}
	if mig.To != dst || mig.Cost.TraceSpan == 0 || mig.Cost.LFTSMPs == 0 {
		t.Fatalf("migrate response incomplete: %+v", mig)
	}
	if mig.Cost.SpanSMPs != mig.Cost.LFTSMPs {
		t.Fatalf("span smps %d != reported LFT smps %d", mig.Cost.SpanSMPs, mig.Cost.LFTSMPs)
	}

	// Error mapping.
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "alpha"}, nil); st != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", st)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/ghost/migrate", MigrateVMRequest{Destination: dst}, nil); st != http.StatusNotFound {
		t.Fatalf("migrate unknown VM: status %d, want 404", st)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/alpha/migrate", MigrateVMRequest{Destination: dst}, nil); st != http.StatusConflict {
		t.Fatalf("migrate to current node: status %d, want 409", st)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/alpha/migrate", MigrateVMRequest{Destination: srv.Snapshot().SMNode}, nil); st != http.StatusBadRequest {
		t.Fatalf("migrate to non-hypervisor: status %d, want 400", st)
	}
	if st := doJSON(t, cl, "DELETE", ts.URL+"/v1/vms/ghost", nil, nil); st != http.StatusNotFound {
		t.Fatalf("destroy unknown VM: status %d, want 404", st)
	}
	if st := doJSON(t, cl, "DELETE", ts.URL+"/v1/vms/alpha", nil, nil); st != http.StatusOK {
		t.Fatalf("destroy: status %d", st)
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/vms/alpha", nil, nil); st != http.StatusNotFound {
		t.Fatalf("get destroyed VM: status %d, want 404", st)
	}

	// Telemetry surface responds.
	if st := doJSON(t, cl, "GET", ts.URL+"/healthz", nil, nil); st != http.StatusOK {
		t.Fatalf("healthz: status %d", st)
	}
	resp, err := cl.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "api_requests_vms_create") {
		t.Fatalf("/metrics missing api counters:\n%s", b)
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/trace", nil, &struct{}{}); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
}

// traceSpan mirrors the /v1/trace span schema the test audits against.
type traceSpan struct {
	ID     int            `json:"id"`
	Parent int            `json:"parent"`
	Kind   string         `json:"kind"`
	Attrs  map[string]any `json:"attrs"`
}

// smpDescendants counts smp spans in the subtree rooted at id.
func smpDescendants(spans []traceSpan, id int) int {
	children := map[int][]traceSpan{}
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	count := 0
	queue := []int{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, sp := range children[cur] {
			if sp.Kind == "smp" {
				count++
			}
			queue = append(queue, sp.ID)
		}
	}
	return count
}

// TestConcurrentMutatorsAndReaders is the acceptance race test: 8 mutator
// goroutines (create -> migrate -> destroy, each owning a disjoint pair of
// hypervisors so capacity conflicts cannot occur) run against 4 reader
// goroutines hammering every GET endpoint. Afterwards every migration
// response's n' x m' cost report is audited against the span tree exported
// by /v1/trace. Run with -race.
func TestConcurrentMutatorsAndReaders(t *testing.T) {
	const (
		mutators   = 8
		readers    = 4
		iterations = 12
	)
	// 6 switches x 3 CAs = 18 CAs: 1 SM + 17 hypervisors >= 2 per mutator.
	srv, ts := newTestServer(t, 6, 3, 2, sriov.VSwitchDynamic, Config{QueueDepth: 4})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps
	if len(hyps) < 2*mutators {
		t.Fatalf("need %d hypervisors, have %d", 2*mutators, len(hyps))
	}

	// post retries on backpressure (429) until the command is admitted.
	post := func(method, url string, body any) (int, []byte, error) {
		var payload []byte
		if body != nil {
			payload, _ = json.Marshal(body)
		}
		for {
			var rd io.Reader
			if payload != nil {
				rd = bytes.NewReader(payload)
			}
			req, err := http.NewRequest(method, url, rd)
			if err != nil {
				return 0, nil, err
			}
			resp, err := cl.Do(req)
			if err != nil {
				return 0, nil, err
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return 0, nil, err
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			return resp.StatusCode, b, nil
		}
	}

	var (
		mu         sync.Mutex
		migrations []MigrateResponse
	)
	var wgMut, wgRead sync.WaitGroup
	errs := make(chan error, mutators+readers)
	stop := make(chan struct{})

	for m := 0; m < mutators; m++ {
		wgMut.Add(1)
		go func(m int) {
			defer wgMut.Done()
			home, away := hyps[2*m].Node, hyps[2*m+1].Node
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("vm-%d-%d", m, i)
				st, b, err := post("POST", ts.URL+"/v1/vms", CreateVMRequest{Name: name, Hypervisor: &home})
				if err != nil || st != http.StatusCreated {
					errs <- fmt.Errorf("mutator %d: create %s: status %d err %v body %s", m, name, st, err, b)
					return
				}
				st, b, err = post("POST", ts.URL+"/v1/vms/"+name+"/migrate", MigrateVMRequest{Destination: away})
				if err != nil || st != http.StatusOK {
					errs <- fmt.Errorf("mutator %d: migrate %s: status %d err %v body %s", m, name, st, err, b)
					return
				}
				var mig MigrateResponse
				if err := json.Unmarshal(b, &mig); err != nil {
					errs <- fmt.Errorf("mutator %d: decode migrate: %v", m, err)
					return
				}
				mu.Lock()
				migrations = append(migrations, mig)
				mu.Unlock()
				st, b, err = post("DELETE", ts.URL+"/v1/vms/"+name, nil)
				if err != nil || st != http.StatusOK {
					errs <- fmt.Errorf("mutator %d: destroy %s: status %d err %v body %s", m, name, st, err, b)
					return
				}
			}
		}(m)
	}

	for r := 0; r < readers; r++ {
		wgRead.Add(1)
		go func(r int) {
			defer wgRead.Done()
			urls := []string{
				ts.URL + "/v1/vms",
				ts.URL + "/v1/topology",
				ts.URL + "/healthz",
				ts.URL + "/metrics",
				fmt.Sprintf("%s/v1/paths/%d/%d", ts.URL, hyps[0].Node, hyps[len(hyps)-1].Node),
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cl.Get(urls[i%len(urls)])
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: %s -> %d", r, urls[i%len(urls)], resp.StatusCode)
					return
				}
			}
		}(r)
	}

	mutDone := make(chan struct{})
	go func() {
		wgMut.Wait()
		close(mutDone)
	}()
	select {
	case err := <-errs:
		close(stop)
		t.Fatal(err)
	case <-mutDone:
	}
	close(stop)
	wgRead.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if want := mutators * iterations; len(migrations) != want {
		t.Fatalf("collected %d migration responses, want %d", len(migrations), want)
	}

	// Audit every response against the exported span tree.
	var dump struct {
		Spans []traceSpan `json:"spans"`
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/trace", nil, &dump); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
	byID := map[int]traceSpan{}
	for _, sp := range dump.Spans {
		byID[sp.ID] = sp
	}
	for _, mig := range migrations {
		root, ok := byID[mig.Cost.TraceSpan]
		if !ok || root.Kind != "migration" {
			t.Fatalf("migration %s: trace span %d missing or wrong kind (%+v)", mig.Name, mig.Cost.TraceSpan, root)
		}
		if got := int(root.Attrs["smps"].(float64)); got != mig.Cost.LFTSMPs {
			t.Errorf("migration %s: span attr smps=%d, response lft_smps=%d", mig.Name, got, mig.Cost.LFTSMPs)
		}
		if got := int(root.Attrs["switches"].(float64)); got != mig.Cost.SwitchesUpdated {
			t.Errorf("migration %s: span attr switches=%d, response switches_updated=%d", mig.Name, got, mig.Cost.SwitchesUpdated)
		}
		if got := smpDescendants(dump.Spans, root.ID); got != mig.Cost.LFTSMPs || got != mig.Cost.SpanSMPs {
			t.Errorf("migration %s: %d smp spans under root %d, response lft_smps=%d span_smps=%d",
				mig.Name, got, root.ID, mig.Cost.LFTSMPs, mig.Cost.SpanSMPs)
		}
	}
}

// TestBackpressure holds the command loop mid-command via the exec gate,
// fills the depth-1 admission queue, and asserts the next mutation is
// rejected with 429 + Retry-After while queued work still completes.
func TestBackpressure(t *testing.T) {
	topo, err := topology.BuildRing(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model: sriov.VSwitchDynamic, VFsPerHypervisor: 2, RouteWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv := NewServer(c, Config{QueueDepth: 1, RetryAfter: 3 * time.Second})
	srv.execGate = gate // before any command is admitted
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	cl := ts.Client()

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	issue := func(name string) {
		st, err := doJSONE(cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: name}, nil)
		results <- result{st, err}
	}
	go issue("held")
	<-gate // loop has popped "held" and is parked: queue is empty again
	go issue("queued")
	waitFor(t, func() bool { return len(srv.cmds) == 1 }, "queued command to land")

	// Queue full, loop parked: this one must bounce.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/vms", strings.NewReader(`{"name":"bounced"}`))
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	gate <- struct{}{} // release "held"
	<-gate             // loop announces "queued"
	gate <- struct{}{} // release "queued"
	for i := 0; i < 2; i++ {
		if r := <-results; r.err != nil || r.status != http.StatusCreated {
			t.Fatalf("admitted command finished with status %d, err %v", r.status, r.err)
		}
	}
	if v := srv.reg.Counter("api.admission_rejects").Value(); v != 1 {
		t.Fatalf("api.admission_rejects = %d, want 1", v)
	}
}

// TestSnapshotCOW pins the copy-on-write contract: a migration re-clones
// only the LFTs it touched, published snapshots are immutable, and the
// generation advances.
func TestSnapshotCOW(t *testing.T) {
	srv, ts := newTestServer(t, 8, 2, 2, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps

	home, away := hyps[0].Node, hyps[len(hyps)-1].Node
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "cow", Hypervisor: &home}, nil); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	before := srv.Snapshot()

	var mig MigrateResponse
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/cow/migrate", MigrateVMRequest{Destination: away}, &mig); st != http.StatusOK {
		t.Fatalf("migrate: status %d", st)
	}
	after := srv.Snapshot()

	if after.Gen <= before.Gen {
		t.Fatalf("generation did not advance: %d -> %d", before.Gen, after.Gen)
	}
	recloned, shared := 0, 0
	for sw, lft := range after.lfts {
		if before.lfts[sw] == lft {
			shared++
		} else {
			recloned++
		}
	}
	if recloned == 0 {
		t.Fatal("migration re-cloned no LFTs")
	}
	if recloned > mig.Cost.SwitchesUpdated {
		t.Fatalf("re-cloned %d LFTs, but migration touched only %d switches", recloned, mig.Cost.SwitchesUpdated)
	}
	if shared == 0 {
		t.Fatal("no LFT clones were shared across generations (COW not working)")
	}
	// The pre-migration snapshot still resolves the old placement.
	for _, vm := range before.VMs {
		if vm.Name == "cow" && vm.Node != home {
			t.Fatalf("published snapshot mutated: VM on %d, want %d", vm.Node, home)
		}
	}
}

// TestShutdownCancelsInFlight queues a full reconfiguration, then shuts
// down with an already-expired context: the operation context is cancelled,
// the queued reconfiguration drains as cancelled (503), and Shutdown
// returns the context error. A post-shutdown mutation gets 503.
func TestShutdownCancelsInFlight(t *testing.T) {
	topo, err := topology.BuildRing(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model: sriov.VSwitchDynamic, VFsPerHypervisor: 2, RouteWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv := NewServer(c, Config{})
	srv.execGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	type recon struct {
		status int
		body   ReconfigureResponse
		err    error
	}
	got := make(chan recon, 1)
	go func() {
		var body ReconfigureResponse
		st, err := doJSONE(cl, "POST", ts.URL+"/v1/reconfigure", nil, &body)
		got <- recon{st, body, err}
	}()
	<-gate // loop parked with the reconfigure in hand

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(expired) }()
	waitFor(t, func() bool {
		select {
		case <-srv.opCtx.Done():
			return true
		default:
			return false
		}
	}, "operation context to be cancelled")

	gate <- struct{}{} // release: reconfigure runs under the cancelled context
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusServiceUnavailable || !r.body.Cancelled {
		t.Fatalf("reconfigure under cancelled context: status %d, body %+v", r.status, r.body)
	}
	if r.body.SwitchesCancelled == 0 {
		t.Fatalf("no switches reported cancelled: %+v", r.body)
	}
	if err := <-shutdownErr; err != context.Canceled {
		t.Fatalf("Shutdown returned %v, want context.Canceled", err)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "late"}, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown create: status %d, want 503", st)
	}
	// Idempotent second shutdown.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestEventsSSE tails /v1/events and expects the VM-lifecycle events a
// create emits to arrive over the stream.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, 4, 2, 2, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "sse-vm"}, nil); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}

	sc := bufio.NewScanner(resp.Body)
	sawVMEvent := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `created VM "sse-vm"`) {
			sawVMEvent = true
			break
		}
	}
	if !sawVMEvent {
		t.Fatalf("stream ended without the VM-created event (scan err: %v, ctx err: %v)", sc.Err(), ctx.Err())
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
