package api

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"ibvsim/internal/audit"
	"ibvsim/internal/ib"
	"ibvsim/internal/reconcile"
	"ibvsim/internal/sriov"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// opKind identifies a command for the single-writer loop.
type opKind uint8

const (
	opCreateVM opKind = iota + 1
	opDestroyVM
	opMigrateVM
	opReconfigure
	opReconcile
)

// command is one admitted mutation. The loop executes it, publishes a new
// snapshot, and delivers exactly one cmdReply on the buffered reply channel.
type command struct {
	kind   opKind
	name   string          // VM name (create/destroy/migrate) or goal (reconcile)
	hyp    topology.NodeID // placement (create) or destination (migrate); NoNode = scheduler
	spec   reconcile.Spec  // desired placement (reconcile)
	dryRun bool            // plan only, mutate nothing (reconcile)
	reqID  string          // request ID assigned by the handler chain
	reply  chan cmdReply
}

// opName labels commands for logs and flight-recorder entries.
func (k opKind) opName() string {
	switch k {
	case opCreateVM:
		return "create_vm"
	case opDestroyVM:
		return "destroy_vm"
	case opMigrateVM:
		return "migrate_vm"
	case opReconfigure:
		return "reconfigure"
	case opReconcile:
		return "reconcile"
	}
	return "unknown"
}

type cmdReply struct {
	status int
	body   any
	// auditLIDs are the LID columns the command touched; the loop audits
	// exactly these after the mutation (auditOpScoped) instead of walking
	// the whole fabric. Failed migrations still carry the VM's LID — a
	// half-applied reconfiguration strands precisely that column, and the
	// audit must flag it before the client sees the error.
	auditLIDs []ib.LID
	auditVMs  []audit.VMBinding
	// auditFull asks for the fabric-wide fast pass instead: set by the
	// fabric-wide commands (reconfigure, reconcile), whose touched set is
	// the whole fabric.
	auditFull bool
}

// CostReport states what one operation cost the fabric, in the paper's
// vocabulary: n' switches had LFT entries updated with a total of LFTSMPs
// block-write SMPs (section VI's n' x m'), plus per-hypervisor address SMPs.
// SpanSMPs is the number of smp spans the operation emitted into the
// telemetry trace — in fault-free operation it equals LFTSMPs, and
// TraceSpan lets a client verify that against /v1/trace independently.
type CostReport struct {
	SwitchesUpdated  int   `json:"switches_updated"`
	LFTSMPs          int   `json:"lft_smps"`
	InvalidationSMPs int   `json:"invalidation_smps,omitempty"`
	HostSMPs         int   `json:"host_smps,omitempty"`
	SpanSMPs         int   `json:"span_smps"`
	TraceSpan        int   `json:"trace_span,omitempty"`
	ModelledUS       int64 `json:"modelled_us"`
}

// VMResponse answers create and get requests.
type VMResponse struct {
	VMInfo
	Cost CostReport `json:"cost"`
}

// DestroyResponse answers destroy requests.
type DestroyResponse struct {
	Name string     `json:"name"`
	Cost CostReport `json:"cost"`
}

// MigrateResponse answers migrate requests with the section VII-B report.
type MigrateResponse struct {
	Name             string          `json:"name"`
	From             topology.NodeID `json:"from"`
	To               topology.NodeID `json:"to"`
	LID              uint16          `json:"lid"`
	AddressesChanged bool            `json:"addresses_changed"`
	DowntimeUS       int64           `json:"downtime_us"`
	Cost             CostReport      `json:"cost"`
}

// ReconfigureResponse answers reconfiguration requests. With the SM's
// IncrementalRouting enabled, Incremental reports whether the delta path
// applied (paths then counts only the destination trees actually re-run)
// and the distribution is a block diff rather than a full push.
type ReconfigureResponse struct {
	Engine            string `json:"engine"`
	Paths             int    `json:"paths"`
	Incremental       bool   `json:"incremental,omitempty"`
	DestsRecomputed   int    `json:"dests_recomputed,omitempty"`
	SwitchesUpdated   int    `json:"switches_updated"`
	SwitchesCancelled int    `json:"switches_cancelled,omitempty"`
	SMPs              int    `json:"smps"`
	BlocksCoalesced   int    `json:"blocks_coalesced,omitempty"`
	ModelledUS        int64  `json:"modelled_us"`
	Cancelled         bool   `json:"cancelled,omitempty"`
}

// loop is the actor goroutine: the only code that calls into the cloud
// after NewServer returns. Commands are executed strictly in admission
// order; after each one a fresh snapshot is published *before* the reply is
// sent, so a client that saw its response also sees its write in reads.
func (s *Server) loop() {
	defer close(s.loopDone)
	depth := s.reg.Gauge("api.queue_depth")
	exec := s.reg.WallHistogram("api.op_exec_us", nil)
	for cmd := range s.cmds {
		if s.execGate != nil {
			s.execGate <- struct{}{} // announce: about to execute
			<-s.execGate             // wait for release
		}
		depth.Set(int64(len(s.cmds)))
		start := time.Now()
		spanBefore := s.tr.LastSpanID()
		rep := s.execute(cmd)
		exec.ObserveDuration(time.Since(start))
		sn := s.buildSnapshot(s.snap.Load())
		s.snap.Store(sn)
		// Black box first, then audit, then the reply: if the mutation
		// corrupted the fabric, the violation is counted and the dump
		// already holds this mutation by the time the client hears back.
		s.rec.RecordMutation(audit.Mutation{
			Op: cmd.kind.opName(), Name: cmd.name, RequestID: cmd.reqID,
			Status: rep.status, Gen: sn.Gen,
			SpanFrom: spanBefore + 1, SpanTo: s.tr.LastSpanID(),
		})
		s.log.Info("mutation",
			"op", cmd.kind.opName(), "name", cmd.name, "request_id", cmd.reqID,
			"status", rep.status, "generation", sn.Gen,
			"duration", time.Since(start).Round(time.Microsecond))
		if rep.auditFull {
			s.auditAfterMutation(sn)
		} else {
			s.auditOpScoped(sn.Gen, rep.auditLIDs, rep.auditVMs)
		}
		cmd.reply <- rep
	}
	depth.Set(0)
}

func (s *Server) execute(cmd *command) cmdReply {
	before := s.tr.LastSpanID()
	switch cmd.kind {
	case opCreateVM:
		var err error
		if cmd.hyp == topology.NoNode {
			_, err = s.c.CreateVM(cmd.name)
		} else {
			_, err = s.c.CreateVMOn(cmd.name, cmd.hyp)
		}
		if err != nil {
			return errReply(err)
		}
		vm := s.c.VM(cmd.name)
		hypDesc := ""
		if n := s.c.SM.Topo.Node(vm.Hyp); n != nil {
			hypDesc = n.Desc
		}
		return cmdReply{
			status: http.StatusCreated,
			body: VMResponse{
				VMInfo: VMInfo{
					Name:    vm.Name,
					Node:    vm.Hyp,
					HypDesc: hypDesc,
					VF:      vm.VF,
					LID:     uint16(vm.Addr.LID),
					GUID:    vm.Addr.GUID.String(),
					GID:     vm.Addr.GID.String(),
				},
				Cost: s.costFromWindow(before),
			},
			auditLIDs: []ib.LID{vm.Addr.LID},
			auditVMs:  []audit.VMBinding{{Name: vm.Name, LID: vm.Addr.LID, Hyp: vm.Hyp}},
		}

	case opDestroyVM:
		var freedLID ib.LID
		if vm := s.c.VM(cmd.name); vm != nil {
			freedLID = vm.Addr.LID
		}
		if err := s.c.DestroyVM(cmd.name); err != nil {
			return errReply(err)
		}
		r := cmdReply{status: http.StatusOK, body: DestroyResponse{
			Name: cmd.name,
			Cost: s.costFromWindow(before),
		}}
		// Under prepopulated LIDs the VF keeps its LID after teardown, so
		// the freed column is still auditable; under dynamic assignment the
		// LID is gone and there is no column left to check.
		if s.c.Model == sriov.VSwitchPrepopulated && freedLID != ib.LIDUnassigned {
			r.auditLIDs = []ib.LID{freedLID}
		}
		return r

	case opMigrateVM:
		var vmLID ib.LID
		var srcHyp topology.NodeID
		srcVF := -1
		if vm := s.c.VM(cmd.name); vm != nil {
			vmLID, srcHyp, srcVF = vm.Addr.LID, vm.Hyp, vm.VF
		}
		rep, err := s.c.MigrateVM(cmd.name, cmd.hyp)
		if err != nil {
			r := errReply(err)
			// A failed migration may have half-applied its plan (e.g. the
			// invalidation pre-pass landed and the updates died), stranding
			// exactly the VM's column — audit it before the client hears.
			if vmLID != ib.LIDUnassigned {
				r.auditLIDs = []ib.LID{vmLID}
			}
			return r
		}
		cost := s.costFromWindow(before)
		// The migration report is authoritative; the span window fills in
		// the cross-reference (root span ID, observed smp span count).
		cost.SwitchesUpdated = rep.Plan.SwitchesUpdated
		cost.LFTSMPs = rep.Plan.SMPs
		cost.InvalidationSMPs = rep.Plan.InvalidationSMPs
		cost.HostSMPs = rep.HostSMPs
		cost.ModelledUS = rep.Plan.ModelledTime.Microseconds()
		vm := s.c.VM(cmd.name)
		lids := []ib.LID{vm.Addr.LID}
		// Under the prepopulated swap the source VF now holds the partner
		// column of the exchange — both changed, audit both.
		if s.c.Model == sriov.VSwitchPrepopulated && srcVF >= 0 {
			if h := s.c.Hypervisor(srcHyp); h != nil && srcVF < len(h.HCA.VFs) {
				lids = append(lids, h.HCA.VFs[srcVF].LID)
			}
		}
		return cmdReply{
			status: http.StatusOK,
			body: MigrateResponse{
				Name:             cmd.name,
				From:             rep.From,
				To:               rep.To,
				LID:              uint16(vm.Addr.LID),
				AddressesChanged: rep.AddressesChanged,
				DowntimeUS:       rep.Downtime.Microseconds(),
				Cost:             cost,
			},
			auditLIDs: lids,
			auditVMs:  []audit.VMBinding{{Name: vm.Name, LID: vm.Addr.LID, Hyp: vm.Hyp}},
		}

	case opReconfigure:
		rs, ds, err := s.c.SM.ReconfigureCtx(s.opCtx)
		resp := ReconfigureResponse{
			Engine:            s.c.SM.Engine.Name(),
			Paths:             rs.PathsComputed,
			Incremental:       rs.Incremental.Applied,
			SwitchesUpdated:   ds.SwitchesUpdated,
			SwitchesCancelled: ds.SwitchesCancelled,
			SMPs:              ds.SMPs,
			BlocksCoalesced:   ds.BlocksCoalesced,
			ModelledUS:        ds.ModelledTime.Microseconds(),
		}
		if rs.Incremental.Applied {
			resp.DestsRecomputed = rs.Incremental.DestsRecomputed
		}
		if errors.Is(err, context.Canceled) {
			resp.Cancelled = true
			return cmdReply{status: http.StatusServiceUnavailable, body: resp, auditFull: true}
		}
		if err != nil {
			r := errReply(err)
			r.auditFull = true
			return r
		}
		return cmdReply{status: http.StatusOK, body: resp, auditFull: true}

	case opReconcile:
		r := s.execReconcile(cmd)
		r.auditFull = true
		return r
	}
	return cmdReply{status: http.StatusInternalServerError, body: map[string]string{"error": "unknown command"}}
}

// costFromWindow derives a cost report from the spans the operation just
// emitted (span IDs are allocated in order and the loop is the only span
// producer, so (before, LastSpanID] is exactly this operation's window).
// For operations without an orchestrator-level report — VM boot and
// teardown under dynamic LID assignment — the smp spans are the record.
func (s *Server) costFromWindow(before int) CostReport {
	var c CostReport
	switches := map[string]struct{}{}
	for _, sp := range s.tr.SpansSince(before) {
		switch sp.Kind {
		case telemetry.SpanSMP:
			c.SpanSMPs++
			c.LFTSMPs++
			c.ModelledUS += sp.Modelled.Microseconds()
			if sw, ok := sp.Attrs["switch"].(string); ok {
				switches[sw] = struct{}{}
			}
		case telemetry.SpanMigration:
			c.TraceSpan = sp.ID
		}
	}
	c.SwitchesUpdated = len(switches)
	return c
}

func errReply(err error) cmdReply {
	return cmdReply{status: classifyErr(err), body: map[string]string{"error": err.Error()}}
}

// classifyErr maps the cloud's error vocabulary onto HTTP statuses. The
// cloud reports errors as formatted strings (it predates this layer), so
// the mapping is textual; anything unrecognised is a 500.
func classifyErr(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "already exists"),
		strings.Contains(msg, "is already on node"),
		strings.Contains(msg, "is busy"),
		strings.Contains(msg, "free VF"):
		return http.StatusConflict
	case strings.Contains(msg, "no VM "):
		return http.StatusNotFound
	case strings.Contains(msg, "not a hypervisor"):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
