package api

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// eventPollInterval is how often an SSE stream polls the tracer for new
// events. The tracer has no subscription mechanism (it is a passive,
// mutex-guarded ring), so streams tail it by sequence number.
const eventPollInterval = 100 * time.Millisecond

// handleEvents serves GET /v1/events as a Server-Sent Events stream of the
// SM's event log (sweeps, distributions, migrations, VM lifecycle). Each
// SSE message carries the event's sequence as its id, its category as the
// event type and the message text as data. `?since=N` (or a Last-Event-ID
// header, honouring SSE reconnect semantics) resumes after sequence N.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	last := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.Atoi(v)
	}
	if v := r.URL.Query().Get("since"); v != "" {
		last, _ = strconv.Atoi(v)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ticker := time.NewTicker(eventPollInterval)
	defer ticker.Stop()
	for {
		evs := s.tr.EventsSince(last)
		for _, e := range evs {
			// SSE data is line-framed; event messages are single-line by
			// convention, but never let a stray newline break the framing.
			msg := strings.ReplaceAll(e.Msg, "\n", " ")
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Category, msg)
			last = e.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.opCtx.Done():
			// Server shutting down: end the stream cleanly.
			return
		case <-ticker.C:
		}
	}
}
