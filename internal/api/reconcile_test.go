package api

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ibvsim/internal/cloud"
	"ibvsim/internal/routing"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

func TestReconcileEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, 6, 2, 3, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps

	// Fragment: one VM on each of six hosts; minimal occupancy is two.
	for i := 0; i < 6; i++ {
		node := hyps[i].Node
		st := doJSON(t, cl, "POST", ts.URL+"/v1/vms",
			CreateVMRequest{Name: fmt.Sprintf("fr-%d", i), Hypervisor: &node}, nil)
		if st != http.StatusCreated {
			t.Fatalf("create fr-%d: status %d", i, st)
		}
	}

	// Dry run via the query form: plans, mutates nothing.
	var dry ReconcileResponse
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile?goal=defrag&dry_run=1", nil, &dry); st != http.StatusOK {
		t.Fatalf("dry run: status %d: %+v", st, dry)
	}
	if !dry.DryRun || dry.Converged || len(dry.Moves) == 0 || dry.Applied != nil {
		t.Fatalf("dry run response: %+v", dry)
	}
	if dry.PredictedTotal.LFTSMPs == 0 || len(dry.Predicted) != dry.Waves {
		t.Fatalf("dry run prediction not populated: %+v", dry)
	}
	var vms struct {
		VMs []VMInfo `json:"vms"`
	}
	doJSON(t, cl, "GET", ts.URL+"/v1/vms", nil, &vms)
	if n := occupiedNodes(vms.VMs); n != 6 {
		t.Fatalf("dry run mutated placement: %d occupied hosts", n)
	}

	// Apply: the applied per-wave costs must equal the prediction exactly.
	var app ReconcileResponse
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile", ReconcileRequest{Goal: "defrag"}, &app); st != http.StatusOK {
		t.Fatalf("apply: status %d: %+v", st, app)
	}
	if app.Aborted || !app.Converged || app.AuditViolations != 0 {
		t.Fatalf("apply response: %+v", app)
	}
	if len(app.Applied) != len(app.Predicted) {
		t.Fatalf("applied %d waves, predicted %d", len(app.Applied), len(app.Predicted))
	}
	for i := range app.Applied {
		pr, ap := app.Predicted[i], app.Applied[i]
		if pr.SwitchesUpdated != ap.SwitchesUpdated || pr.LFTSMPs != ap.LFTSMPs ||
			pr.InvalidationSMPs != ap.InvalidationSMPs || pr.HostSMPs != ap.HostSMPs ||
			pr.ModelledUS != ap.ModelledUS {
			t.Errorf("wave %d: predicted %+v != applied %+v", i, pr, ap)
		}
	}
	// The same prediction held across the dry run and the apply.
	if dry.PredictedTotal != app.PredictedTotal {
		t.Errorf("dry-run predicted %+v, apply predicted %+v", dry.PredictedTotal, app.PredictedTotal)
	}
	doJSON(t, cl, "GET", ts.URL+"/v1/vms", nil, &vms)
	if n := occupiedNodes(vms.VMs); n != 2 {
		t.Fatalf("defrag left %d occupied hosts, want 2", n)
	}

	// Re-reconciling the achieved state converges with zero moves.
	var again ReconcileResponse
	doJSON(t, cl, "POST", ts.URL+"/v1/reconcile?goal=defrag&dry_run=1", nil, &again)
	if !again.Converged || len(again.Moves) != 0 {
		t.Fatalf("achieved state must be a fixpoint: %+v", again)
	}

	// Drain via the JSON body form.
	target := vms.VMs[0].Node
	var drain ReconcileResponse
	host := target
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile", ReconcileRequest{Goal: "drain", Host: &host}, &drain); st != http.StatusOK {
		t.Fatalf("drain: status %d: %+v", st, drain)
	}
	doJSON(t, cl, "GET", ts.URL+"/v1/vms", nil, &vms)
	for _, vm := range vms.VMs {
		if vm.Node == target {
			t.Fatalf("VM %q still on drained host %d", vm.Name, target)
		}
	}

	// Error surface: unknown goal and bad drain host are 400s; an explicit
	// placement of an unknown VM is a 404.
	var e map[string]string
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile?goal=bogus", nil, &e); st != http.StatusBadRequest {
		t.Fatalf("bogus goal: status %d", st)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile?goal=drain:zz", nil, &e); st != http.StatusBadRequest {
		t.Fatalf("bad drain host: status %d", st)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconcile",
		ReconcileRequest{Placement: map[string]topology.NodeID{"ghost": hyps[0].Node}}, &e); st != http.StatusNotFound {
		t.Fatalf("ghost placement: status %d", st)
	}
}

func occupiedNodes(vms []VMInfo) int {
	nodes := map[topology.NodeID]bool{}
	for _, vm := range vms {
		nodes[vm.Node] = true
	}
	return len(nodes)
}

// newPaperFatTreeServer boots the paper's 648-node fat-tree behind the API.
func newPaperFatTreeServer(t *testing.T, vfs int, model sriov.Model) (*Server, *httptest.Server) {
	t.Helper()
	topo, err := topology.BuildPaperFatTree(648)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model:            model,
		VFsPerHypervisor: vfs,
		RouteWorkers:     4,
		Engine:           routing.NewFatTree(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return srv, ts
}

// TestReconcileFatTreeAcceptance is the PR's acceptance scenario: on a
// fragmented 648-node fat-tree with VMs across twice the minimal host count,
// reconcile(defrag) must (a) converge to minimal occupancy, (b) cost fewer
// LFT SMPs and fewer sequential batches than migrating the same moves
// one-by-one on an identically prepared server, and (c) predict its applied
// costs exactly.
func TestReconcileFatTreeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("648-node fabric boot is slow")
	}
	const vfs = 4
	bootVMs := func(t *testing.T, srv *Server, ts *httptest.Server) {
		cl := ts.Client()
		hyps := srv.Snapshot().Hyps
		// 24 VMs across 12 hosts (2 each): minimal occupancy is 6 hosts, so
		// the fleet is fragmented across 2x the minimal host count.
		for i := 0; i < 12; i++ {
			node := hyps[i*3].Node
			for j := 0; j < 2; j++ {
				st := doJSON(t, cl, "POST", ts.URL+"/v1/vms",
					CreateVMRequest{Name: fmt.Sprintf("vm-%02d-%d", i, j), Hypervisor: &node}, nil)
				if st != http.StatusCreated {
					t.Fatalf("create vm-%02d-%d: status %d", i, j, st)
				}
			}
		}
	}

	srvA, tsA := newPaperFatTreeServer(t, vfs, sriov.VSwitchDynamic)
	bootVMs(t, srvA, tsA)
	clA := tsA.Client()

	var rec ReconcileResponse
	if st := doJSON(t, clA, "POST", tsA.URL+"/v1/reconcile?goal=defrag", nil, &rec); st != http.StatusOK {
		t.Fatalf("reconcile: status %d: %+v", st, rec)
	}
	if rec.Aborted || !rec.Converged || rec.AuditViolations != 0 {
		t.Fatalf("reconcile response: %+v", rec)
	}
	if len(rec.Moves) == 0 || rec.Waves >= len(rec.Moves) {
		t.Fatalf("want fewer batches than moves, got %d waves for %d moves", rec.Waves, len(rec.Moves))
	}
	for i := range rec.Applied {
		pr, ap := rec.Predicted[i], rec.Applied[i]
		if pr.SwitchesUpdated != ap.SwitchesUpdated || pr.LFTSMPs != ap.LFTSMPs ||
			pr.InvalidationSMPs != ap.InvalidationSMPs || pr.HostSMPs != ap.HostSMPs ||
			pr.ModelledUS != ap.ModelledUS {
			t.Errorf("wave %d: predicted %+v != applied %+v", i, pr, ap)
		}
	}
	var vmsA struct {
		VMs []VMInfo `json:"vms"`
	}
	doJSON(t, clA, "GET", tsA.URL+"/v1/vms", nil, &vmsA)
	if n := occupiedNodes(vmsA.VMs); n != 6 { // ceil(24 VMs / 4 VFs)
		t.Fatalf("defrag left %d occupied hosts, want minimal 6", n)
	}

	// Baseline: an identically prepared server pays for the same moves with
	// one migration (one LFT distribution) each.
	srvB, tsB := newPaperFatTreeServer(t, vfs, sriov.VSwitchDynamic)
	bootVMs(t, srvB, tsB)
	clB := tsB.Client()
	baselineSMPs := 0
	for _, mv := range rec.Moves {
		var mrep MigrateResponse
		st := doJSON(t, clB, "POST", tsB.URL+"/v1/vms/"+mv.VM+"/migrate",
			MigrateVMRequest{Destination: mv.To}, &mrep)
		if st != http.StatusOK {
			t.Fatalf("baseline migrate %q: status %d", mv.VM, st)
		}
		baselineSMPs += mrep.Cost.LFTSMPs + mrep.Cost.InvalidationSMPs
	}
	var vmsB struct {
		VMs []VMInfo `json:"vms"`
	}
	doJSON(t, clB, "GET", tsB.URL+"/v1/vms", nil, &vmsB)
	if n := occupiedNodes(vmsB.VMs); n != 6 {
		t.Fatalf("baseline left %d occupied hosts, want 6", n)
	}

	batchedSMPs := rec.AppliedTotal.LFTSMPs + rec.AppliedTotal.InvalidationSMPs
	if batchedSMPs >= baselineSMPs {
		t.Fatalf("batched reconcile used %d SMPs, one-by-one used %d: coalescing bought nothing", batchedSMPs, baselineSMPs)
	}
	if rec.Waves >= len(rec.Moves) {
		t.Fatalf("batched reconcile used %d waves for %d moves", rec.Waves, len(rec.Moves))
	}
	t.Logf("defrag: %d moves in %d waves, %d SMPs batched vs %d one-by-one",
		len(rec.Moves), rec.Waves, batchedSMPs, baselineSMPs)
}
