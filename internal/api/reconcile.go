package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ibvsim/internal/ib"
	"ibvsim/internal/reconcile"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// ReconcileRequest is the body of POST /v1/reconcile. The goal DSL is also
// accepted on the query string (?goal=defrag&dry_run=1, ?goal=drain:12), so
// a curl one-liner needs no body. An explicit placement map implies
// goal=placement when the goal is omitted.
type ReconcileRequest struct {
	Goal      string                     `json:"goal,omitempty"`
	Host      *topology.NodeID           `json:"host,omitempty"`
	Placement map[string]topology.NodeID `json:"placement,omitempty"`
	DryRun    bool                       `json:"dry_run,omitempty"`
}

// ReconcileMove is one planned migration in a reconcile response.
type ReconcileMove struct {
	VM        string          `json:"vm"`
	From      topology.NodeID `json:"from"`
	To        topology.NodeID `json:"to"`
	Wave      int             `json:"wave"`
	LeafLocal bool            `json:"leaf_local"`
}

// ReconcileResponse answers POST /v1/reconcile. Predicted costs come from
// the planner's shadow simulation; Applied (absent on dry runs) holds the
// per-wave costs the fabric actually paid, in the same vocabulary, so a
// client can hold the planner to its prediction field by field.
type ReconcileResponse struct {
	Goal            string          `json:"goal"`
	DryRun          bool            `json:"dry_run"`
	Converged       bool            `json:"converged"`
	Moves           []ReconcileMove `json:"moves"`
	Waves           int             `json:"waves"`
	Predicted       []CostReport    `json:"predicted,omitempty"`
	PredictedTotal  CostReport      `json:"predicted_total"`
	Applied         []CostReport    `json:"applied,omitempty"`
	AppliedTotal    *CostReport     `json:"applied_total,omitempty"`
	Generation      uint64          `json:"generation,omitempty"`
	AuditViolations int             `json:"audit_violations,omitempty"`
	Aborted         bool            `json:"aborted,omitempty"`
	Error           string          `json:"error,omitempty"`
	TraceSpan       int             `json:"trace_span,omitempty"`
}

func (s *Server) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req ReconcileRequest
	q := r.URL.Query()
	if g := q.Get("goal"); g != "" {
		req.Goal = g
		req.DryRun = q.Get("dry_run") == "1" || q.Get("dry_run") == "true"
	} else if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}

	var spec reconcile.Spec
	switch {
	case req.Goal == "" && len(req.Placement) > 0,
		req.Goal == string(reconcile.GoalPlacement):
		if len(req.Placement) == 0 {
			writeErr(w, http.StatusBadRequest, "goal %q needs a placement map", req.Goal)
			return
		}
		spec = reconcile.Spec{Goal: reconcile.GoalPlacement, Placement: req.Placement}
	case req.Goal == string(reconcile.GoalDrain) && req.Host != nil:
		spec = reconcile.Spec{Goal: reconcile.GoalDrain, Host: *req.Host}
	default:
		var err error
		spec, err = reconcile.ParseGoal(req.Goal)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	cmd := &command{kind: opReconcile, name: string(spec.Goal), spec: spec, dryRun: req.DryRun}
	if s.co != nil {
		// Reconciliation waves move VMs without going through the shards, so
		// the whole run executes under a coordinator freeze; each wave
		// resyncs the shards itself (see snapAudit), so no final resync.
		cmd.reqID = requestID(r)
		s.runFrozen(w, cmd, false)
		return
	}
	s.enqueue(w, r, cmd)
}

// costFromStep converts a predicted StepCost into the wire vocabulary.
// SpanSMPs is what the wave will emit into the trace: one smp span per LFT
// block-write plus one per invalidation write.
func costFromStep(c reconcile.StepCost) CostReport {
	return CostReport{
		SwitchesUpdated:  c.SwitchesUpdated,
		LFTSMPs:          c.LFTSMPs,
		InvalidationSMPs: c.InvalidationSMPs,
		HostSMPs:         c.HostSMPs,
		SpanSMPs:         c.LFTSMPs + c.InvalidationSMPs,
		ModelledUS:       c.Modelled.Microseconds(),
	}
}

// execReconcile runs on the actor goroutine: plan against live state, and —
// unless the client asked for a dry run — execute the waves in order. Each
// wave publishes a fresh snapshot and must pass the fast audit before the
// next wave is released; a violation (or wave error) aborts the remainder,
// with everything already applied reported faithfully.
func (s *Server) execReconcile(cmd *command) cmdReply {
	span := s.tr.Start(telemetry.SpanReconcile, string(cmd.spec.Goal))
	s.tr.PushScope(span)
	defer func() {
		s.tr.PopScope()
		span.End()
	}()

	p := &reconcile.Planner{C: s.c}
	plan, err := p.Plan(cmd.spec)
	if err != nil {
		return errReply(err)
	}

	resp := ReconcileResponse{
		Goal:           string(plan.Goal),
		DryRun:         cmd.dryRun,
		Converged:      plan.Converged,
		Moves:          make([]ReconcileMove, len(plan.Moves)),
		Waves:          len(plan.Waves),
		PredictedTotal: costFromStep(plan.Total),
		TraceSpan:      span.ID(),
	}
	for i, mv := range plan.Moves {
		resp.Moves[i] = ReconcileMove{VM: mv.VM, From: mv.From, To: mv.To, Wave: mv.Wave, LeafLocal: mv.LeafLocal}
	}
	for _, c := range plan.Predicted {
		resp.Predicted = append(resp.Predicted, costFromStep(c))
	}
	span.SetAttr("goal", string(plan.Goal))
	span.SetAttr("moves", len(plan.Moves))
	span.SetAttr("waves", len(plan.Waves))
	span.SetAttr("dry_run", cmd.dryRun)
	span.SetModelled(plan.Total.Modelled)

	if cmd.dryRun || plan.Converged {
		return cmdReply{status: http.StatusOK, body: resp}
	}

	var total CostReport
	for wi, wave := range plan.Waves {
		before := s.tr.LastSpanID()
		// Each wave's merged distribution gets its own provenance epoch, so
		// /v1/explain attributes a hop to "which wave of which goal" rather
		// than a generic migration.
		prov := &ib.Provenance{
			Mutation: ib.NextMutationID(),
			Span:     span.ID(),
			Engine:   "reconcile",
			Reason: fmt.Sprintf("reconcile %s wave %d/%d (%d moves)",
				plan.Goal, wi+1, len(plan.Waves), len(wave)),
			Shard: ib.ShardCoordinator,
		}
		wr, werr := s.c.MigrateWaveProv(wave, prov)
		// Publish what the wave did (even a failed wave may have moved VMs
		// before erroring) and gate on the fast audit before continuing.
		gen, viol := s.snapAudit()
		resp.Generation = gen
		resp.AuditViolations += viol
		if werr != nil {
			resp.Aborted = true
			resp.Error = werr.Error()
			resp.AppliedTotal = &total
			return cmdReply{status: classifyErr(werr), body: resp}
		}
		applied := s.costFromWindow(before)
		applied.SwitchesUpdated = wr.Plan.SwitchesUpdated
		applied.LFTSMPs = wr.Plan.SMPs
		applied.InvalidationSMPs = wr.Plan.InvalidationSMPs
		applied.HostSMPs = wr.HostSMPs
		applied.ModelledUS = wr.Plan.ModelledTime.Microseconds()
		resp.Applied = append(resp.Applied, applied)
		total.SwitchesUpdated += applied.SwitchesUpdated
		total.LFTSMPs += applied.LFTSMPs
		total.InvalidationSMPs += applied.InvalidationSMPs
		total.HostSMPs += applied.HostSMPs
		total.SpanSMPs += applied.SpanSMPs
		total.ModelledUS += applied.ModelledUS
		if viol > 0 {
			resp.Aborted = true
			resp.Error = "fast audit found violations; remaining waves aborted"
			resp.AppliedTotal = &total
			return cmdReply{status: http.StatusInternalServerError, body: resp}
		}
	}
	resp.AppliedTotal = &total

	// Confirm convergence: re-planning the achieved state must be a no-op.
	if again, err := p.Plan(cmd.spec); err == nil {
		resp.Converged = again.Converged
	}
	return cmdReply{status: http.StatusOK, body: resp}
}
