package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ibvsim/internal/audit"
	"ibvsim/internal/cloud"
	"ibvsim/internal/core"
	"ibvsim/internal/routing"
	"ibvsim/internal/smp"
	"ibvsim/internal/sriov"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// auditSummary mirrors the GET /v1/audit response body.
type auditSummary struct {
	Runs            int64         `json:"runs"`
	ViolationsTotal int64         `json:"violations_total"`
	Dumps           int           `json:"dumps"`
	Last            *audit.Report `json:"last"`
}

// flightBody mirrors the GET /v1/flightrecorder response body.
type flightBody struct {
	Dumps    int           `json:"dumps"`
	Entries  []audit.Entry `json:"entries"`
	LastDump *struct {
		Reason  *audit.Report        `json:"reason"`
		Entries []audit.Entry        `json:"entries"`
		Spans   []telemetry.SpanView `json:"spans"`
	} `json:"last_dump"`
}

// newFatTreeServer boots a cloud on a small XGFT with fat-tree routing.
// Deadlock-mindful tests need it: a ring fabric under min-hop routing has a
// genuinely cyclic CDG (the auditor rightly reports deadlock there), while
// up/down paths on a fat-tree are provably cycle-free.
func newFatTreeServer(t *testing.T, spec topology.XGFTSpec, vfs int, model sriov.Model, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	topo, err := topology.BuildXGFT(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cas := topo.CAs()
	c, _, err := cloud.New(topo, cas[0], cas[1:], cloud.Config{
		Model:            model,
		VFsPerHypervisor: vfs,
		RouteWorkers:     1,
		Engine:           routing.NewFatTree(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return srv, ts
}

// getText fetches a URL and returns the body as a string.
func getText(t *testing.T, cl *http.Client, url string) string {
	t.Helper()
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAuditCleanLifecycle drives a full VM lifecycle plus a reconfiguration
// and requires the auditor — which runs after every one of those mutations,
// and inside the reconfigure's distribution via the transition hook — to
// find a perfectly healthy fabric.
func TestAuditCleanLifecycle(t *testing.T) {
	for _, model := range []sriov.Model{sriov.VSwitchDynamic, sriov.VSwitchPrepopulated} {
		t.Run(model.String(), func(t *testing.T) {
			// 9 compute nodes under 3 leaf switches, 3 spines.
			srv, ts := newFatTreeServer(t, topology.XGFTSpec{M: []int{3, 3}, W: []int{1, 3}}, 2, model, Config{})
			cl := ts.Client()
			hyps := srv.Snapshot().Hyps

			doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "vm-a"}, nil)
			doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "vm-b"}, nil)
			var vm VMInfo
			doJSON(t, cl, "GET", ts.URL+"/v1/vms/vm-a", nil, &vm)
			dst := hyps[0].Node
			if vm.Node == dst {
				dst = hyps[1].Node
			}
			if st := doJSON(t, cl, "POST", ts.URL+"/v1/vms/vm-a/migrate", MigrateVMRequest{Destination: dst}, nil); st != http.StatusOK {
				t.Fatalf("migrate: %d", st)
			}
			doJSON(t, cl, "DELETE", ts.URL+"/v1/vms/vm-b", nil, nil)
			if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconfigure", nil, nil); st != http.StatusOK {
				t.Fatalf("reconfigure: %d", st)
			}

			var sum auditSummary
			if st := doJSON(t, cl, "GET", ts.URL+"/v1/audit?run=full", nil, &sum); st != http.StatusOK {
				t.Fatalf("audit: %d", st)
			}
			// 5 post-mutation audits + the ?run=full one; the reconfigure's
			// distribution also ran the transient-CDG transition check.
			if sum.Runs < 6 {
				t.Errorf("runs = %d, want >= 6", sum.Runs)
			}
			if sum.ViolationsTotal != 0 {
				t.Errorf("clean lifecycle produced %d violations: %+v", sum.ViolationsTotal, sum.Last)
			}
			if sum.Dumps != 0 {
				t.Errorf("clean lifecycle dumped %d times", sum.Dumps)
			}
			if sum.Last == nil || sum.Last.Scope != "full" || sum.Last.LIDsChecked == 0 {
				t.Errorf("run=full report missing or wrong scope: %+v", sum.Last)
			}

			// The flight recorder retains the mutations even when clean.
			var fr flightBody
			doJSON(t, cl, "GET", ts.URL+"/v1/flightrecorder", nil, &fr)
			muts := 0
			for _, e := range fr.Entries {
				if e.Kind == "mutation" {
					muts++
					if e.RequestID == "" {
						t.Errorf("mutation entry without request id: %+v", e)
					}
				}
			}
			if muts != 5 {
				t.Errorf("flight ring holds %d mutations, want 5", muts)
			}
		})
	}
}

// TestAuditCatchesInjectedCorruption is the regression test for the whole
// observability chain: a seeded fault burst hits a migration configured
// with the invalidation mitigation, so the pre-pass points the VM's LID at
// port 255 (DropPort) and the dying distribution strands it there. The
// post-mutation audit must flag the black hole before the client even sees
// the error response, and the flight dump must carry the corrupting
// mutation and its span window.
func TestAuditCatchesInjectedCorruption(t *testing.T) {
	flightDir := t.TempDir()
	srv, ts := newTestServer(t, 6, 2, 2, sriov.VSwitchDynamic, Config{FlightDir: flightDir})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps

	doJSON(t, cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: "victim"}, nil)
	var vm VMInfo
	doJSON(t, cl, "GET", ts.URL+"/v1/vms/victim", nil, &vm)
	dst := hyps[0].Node
	if vm.Node == dst {
		dst = hyps[1].Node
	}

	// The loop is idle between replies (happens-before via the reply
	// channel), so reconfiguring the SM here is race free. Invalidation
	// mitigation + seeded drops + a single-attempt retry budget: the
	// DropPort pre-pass lands, the LFT updates die, the migration aborts.
	srv.c.RC.Mitigation = core.MitigationInvalidate
	srv.c.SM.Dist.Retry.MaxAttempts = 1
	srv.c.SM.InjectFaults(smp.FaultConfig{Drop: 0.5, Seed: 7})

	body, err := json.Marshal(MigrateVMRequest{Destination: dst})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/vms/victim/migrate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "req-corruption-probe")
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("migration survived a 50% drop rate with one attempt per SMP; fault seam broken")
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-corruption-probe" {
		t.Fatalf("inbound request id not echoed: %q", got)
	}

	var sum auditSummary
	doJSON(t, cl, "GET", ts.URL+"/v1/audit", nil, &sum)
	if sum.Last == nil || sum.Last.ByKind["blackhole"] < 1 {
		t.Fatalf("auditor missed the stranded DropPort entries: %+v", sum.Last)
	}
	if sum.ViolationsTotal < 1 || sum.Dumps < 1 {
		t.Fatalf("violations_total=%d dumps=%d, want >= 1 each", sum.ViolationsTotal, sum.Dumps)
	}

	// The dump carries the corrupting mutation (found by request ID) and
	// the smp spans of its window.
	var fr flightBody
	doJSON(t, cl, "GET", ts.URL+"/v1/flightrecorder", nil, &fr)
	if fr.LastDump == nil || fr.LastDump.Reason == nil || fr.LastDump.Reason.Total < 1 {
		t.Fatalf("flight dump missing or empty")
	}
	var mut *audit.Entry
	for i := range fr.LastDump.Entries {
		if e := &fr.LastDump.Entries[i]; e.Kind == "mutation" && e.RequestID == "req-corruption-probe" {
			mut = e
		}
	}
	if mut == nil {
		t.Fatal("dump does not contain the corrupting mutation")
	}
	if mut.Status == http.StatusOK || mut.SpanFrom <= 0 || mut.SpanTo < mut.SpanFrom {
		t.Fatalf("corrupting mutation entry malformed: %+v", mut)
	}
	smps := 0
	for _, sp := range fr.LastDump.Spans {
		if sp.Kind == telemetry.SpanSMP && sp.ID >= mut.SpanFrom && sp.ID <= mut.SpanTo {
			smps++
		}
	}
	if smps == 0 {
		t.Fatal("dump span window does not cover the corrupting SMP spans")
	}

	// The dump also landed on disk, and the violation counters made it to
	// the Prometheus surface.
	files, err := filepath.Glob(filepath.Join(flightDir, "flight-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no flight dump on disk in %s (%v)", flightDir, err)
	}
	prom := getText(t, cl, ts.URL+"/metrics")
	for _, want := range []string{"audit_violations_blackhole", "audit_runs", "audit_violations_total"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestAuditCadenceLifecycle covers the ticker goroutine: it audits on its
// own while the API is idle, stops at Shutdown, and leaks nothing.
func TestAuditCadenceLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, ts := newFatTreeServer(t, topology.XGFTSpec{M: []int{2, 2}, W: []int{1, 2}}, 1,
		sriov.VSwitchDynamic, Config{AuditInterval: 2 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for srv.Auditor().Runs() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Auditor().Runs() < 3 {
		t.Fatal("cadence auditor never ran")
	}
	if got := srv.Auditor().ViolationsTotal(); got != 0 {
		t.Fatalf("idle fabric produced %d violations", got)
	}
	if srv.Auditor().Last().Scope != "full" {
		t.Fatalf("cadence audits must be full scope, got %q", srv.Auditor().Last().Scope)
	}

	ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	runsAtShutdown := srv.Auditor().Runs()
	time.Sleep(20 * time.Millisecond)
	if got := srv.Auditor().Runs(); got != runsAtShutdown {
		t.Fatalf("auditor kept running after Shutdown: %d -> %d", runsAtShutdown, got)
	}
	// Goroutine-leak check, with retries for runtime stragglers.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestAuditorRacesWithMutators runs the cadence auditor at full tilt while
// 8 mutators migrate VMs back and forth and readers pull audit and flight
// state — the -race acceptance test for snapshot-based auditing.
func TestAuditorRacesWithMutators(t *testing.T) {
	// 18 compute nodes under 6 leaf switches, 3 spines.
	srv, ts := newFatTreeServer(t, topology.XGFTSpec{M: []int{3, 6}, W: []int{1, 3}}, 2,
		sriov.VSwitchPrepopulated, Config{
			AuditInterval: time.Millisecond,
			QueueDepth:    256,
		})
	cl := ts.Client()
	hyps := srv.Snapshot().Hyps
	if len(hyps) < 16 {
		t.Fatalf("need 16 hypervisors, got %d", len(hyps))
	}

	const mutators = 8
	const opsEach = 12
	var wg sync.WaitGroup
	errs := make(chan error, mutators)
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			// Disjoint hypervisor pair per mutator: no capacity conflicts.
			a, b := hyps[2*m].Node, hyps[2*m+1].Node
			name := fmt.Sprintf("vm-%d", m)
			if st, err := doJSONE(cl, "POST", ts.URL+"/v1/vms", CreateVMRequest{Name: name, Hypervisor: &a}, nil); err != nil || st != http.StatusCreated {
				errs <- fmt.Errorf("create %s: st=%d err=%v", name, st, err)
				return
			}
			cur, next := a, b
			for i := 0; i < opsEach; i++ {
				st, err := doJSONE(cl, "POST", ts.URL+"/v1/vms/"+name+"/migrate", MigrateVMRequest{Destination: next}, nil)
				if err != nil || st != http.StatusOK {
					errs <- fmt.Errorf("migrate %s -> %d: st=%d err=%v", name, next, st, err)
					return
				}
				cur, next = next, cur
			}
		}(m)
	}
	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
					doJSONE(cl, "GET", ts.URL+"/v1/audit?run=full", nil, nil) //nolint:errcheck
					doJSONE(cl, "GET", ts.URL+"/v1/flightrecorder", nil, nil) //nolint:errcheck
				}
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Auditor().ViolationsTotal(); got != 0 {
		t.Fatalf("racing mutations produced %d audit violations: %+v", got, srv.Auditor().Last())
	}
	if srv.Auditor().Runs() < mutators*opsEach {
		t.Errorf("auditor runs %d < mutation count %d", srv.Auditor().Runs(), mutators*opsEach)
	}
}

// TestRequestIDsAssigned checks the generated-ID path: no inbound header,
// so the server mints req-%06d and echoes it on the response.
func TestRequestIDsAssigned(t *testing.T) {
	_, ts := newTestServer(t, 4, 1, 1, sriov.VSwitchDynamic, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if len(id) != len("req-000001") || !strings.HasPrefix(id, "req-") {
		t.Fatalf("generated request id %q not in req-%%06d form", id)
	}
}

// TestTraceChromeFormat checks /v1/trace?format=chrome serves a loadable
// trace-event body and unknown formats are rejected.
func TestTraceChromeFormat(t *testing.T) {
	_, ts := newTestServer(t, 4, 1, 1, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()
	var chrome struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/trace?format=chrome", nil, &chrome); st != http.StatusOK {
		t.Fatalf("chrome trace: %d", st)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome trace empty after bootstrap")
	}
	if st := doJSON(t, cl, "GET", ts.URL+"/v1/trace?format=perfetto", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", st)
	}
}
