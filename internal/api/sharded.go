package api

import (
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ibvsim/internal/audit"
	"ibvsim/internal/ib"
	"ibvsim/internal/shard"
	"ibvsim/internal/topology"
)

// This file is the sharded control-plane mode of the server: instead of one
// actor goroutine owning the whole cloud, a shard.Coordinator routes
// mutations to per-zone actors and the server composes its read snapshot
// from the shards' own copy-on-write snapshots. Every endpoint, audit hook
// and CostReport field behaves as in single-actor mode; the differences are
// purely architectural:
//
//   - Mutations run on the request goroutine through the coordinator; the
//     admission queue that backpressures (429 + Retry-After) is the owning
//     shard's, not a global one.
//   - The post-mutation audit is the same op-scoped pass (audit.ScopeReach
//     over exactly the LID columns the mutation touched) both modes run;
//     full hygiene runs at quiesce points (?run=full, the audit cadence),
//     here under a coordinator freeze.
//   - Cost reports come from the operation's own statistics (BootStats,
//     PlanStats) rather than the tracer window, which is not attributable
//     to one operation while shards mutate concurrently.

// startSharded builds the coordinator and wires the after-mutation hook
// (flight recorder + op-scoped audit). Called from NewServer.
func (s *Server) startSharded(shards, queueDepth int) error {
	co, err := shard.New(s.c, shards, shard.Config{
		QueueDepth:    queueDepth,
		AfterMutation: s.afterShardMutation,
	})
	if err != nil {
		return err
	}
	s.co = co
	return nil
}

// afterShardMutation is the sharded analogue of the single-actor loop's
// post-mutation tail: record the mutation in the flight recorder, log it,
// and audit the LID columns it touched. For zone-local mutations it runs on
// the owning actor (the reply is not sent until it returns, preserving the
// "violation counted before the client hears back" ordering); for
// cross-shard migrations it runs once on the coordinator's goroutine.
func (s *Server) afterShardMutation(m shard.Mutation) {
	status := http.StatusOK
	switch {
	case m.Err != nil:
		status = classifyErr(m.Err)
	case m.Op == "create_vm":
		status = http.StatusCreated
	}
	s.rec.RecordMutation(audit.Mutation{
		Op: m.Op, Name: m.Name, RequestID: m.ReqID, Status: status, Gen: m.Gen,
	})
	s.log.Info("mutation",
		"op", m.Op, "name", m.Name, "request_id", m.ReqID,
		"status", status, "generation", m.Gen, "shard", m.Shard)
	if m.Err != nil || len(m.AuditLIDs) == 0 {
		return
	}
	var vms []audit.VMBinding
	if m.Binding != nil {
		vms = []audit.VMBinding{{Name: m.Binding.Name, LID: m.Binding.LID, Hyp: m.Binding.Hyp}}
	}
	s.auditOpScoped(m.Gen, m.AuditLIDs, vms)
}

// snapshot returns the current read snapshot: the loop-published one in
// single-actor mode, the lazily composed one in sharded mode.
func (s *Server) snapshot() *Snapshot {
	if s.co == nil {
		return s.snap.Load()
	}
	return s.compose()
}

// compose builds (or returns the cached) fabric-wide snapshot from the
// shards' snapshots. Shards publish O(zone) snapshots per mutation; the
// O(fabric) composition cost is paid lazily, only when a read arrives after
// a generation change. The LFT "clones" are the SM's atomically published
// immutable active tables — captured by pointer, never copied.
func (s *Server) compose() *Snapshot {
	gen := s.co.Gen()
	if sn := s.snap.Load(); sn != nil && sn.Gen == gen {
		return sn
	}
	start := time.Now()
	defer func() {
		s.c.SM.Telemetry().Registry().
			WallHistogram("api.compose_wall_us", nil).
			ObserveDuration(time.Since(start))
	}()
	topo := s.c.SM.Topo
	sn := &Snapshot{
		Gen:       gen,
		Fabric:    topo.String(),
		Model:     s.c.Model.String(),
		SMNode:    s.c.SM.SMNode,
		topo:      topo,
		lidOf:     map[topology.NodeID]ib.LID{},
		nodeOfLID: s.c.SM.AddressView(),
		lfts:      map[topology.NodeID]*ib.LFT{},
	}
	for _, id := range topo.Switches() {
		if lid := s.c.SM.LIDOf(id); lid != ib.LIDUnassigned {
			sn.lidOf[id] = lid
		}
		if lft := s.c.SM.ProgrammedLFT(id); lft != nil {
			sn.lfts[id] = lft
		}
	}
	for _, id := range topo.CAs() {
		if lid := s.c.SM.LIDOf(id); lid != ib.LIDUnassigned {
			sn.lidOf[id] = lid
		}
	}
	for _, ss := range s.co.Snaps() {
		zone := ss.Shard
		for _, h := range ss.Hyps {
			sn.Hyps = append(sn.Hyps, HypInfo{
				Node:     h.Node,
				Desc:     topo.Node(h.Node).Desc,
				LID:      uint16(s.c.SM.LIDOf(h.Node)),
				VFs:      h.VFs,
				Attached: h.Attached,
				Zone:     zone,
			})
		}
		for _, vm := range ss.VMs {
			sn.VMs = append(sn.VMs, VMInfo{
				Name:    vm.Name,
				Node:    vm.Hyp,
				HypDesc: topo.Node(vm.Hyp).Desc,
				VF:      vm.VF,
				LID:     uint16(vm.Addr.LID),
				GUID:    vm.Addr.GUID.String(),
				GID:     vm.Addr.GID.String(),
			})
		}
	}
	sort.Slice(sn.Hyps, func(i, j int) bool { return sn.Hyps[i].Node < sn.Hyps[j].Node })
	sort.Slice(sn.VMs, func(i, j int) bool { return sn.VMs[i].Name < sn.VMs[j].Name })
	s.snap.Store(sn)
	return sn
}

// writeShardErr maps coordinator errors onto the HTTP surface: shard
// backpressure keeps the single-actor 429 + Retry-After contract.
func (s *Server) writeShardErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, shard.ErrBackpressure):
		s.reg.Counter("api.admission_rejects").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, "admission queue full (shard queue saturated)")
	case errors.Is(err, shard.ErrShutdown):
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
	default:
		writeErr(w, classifyErr(err), "%v", err)
	}
}

func (s *Server) shardCreate(w http.ResponseWriter, r *http.Request, req CreateVMRequest) {
	hyp := topology.NoNode
	if req.Hypervisor != nil {
		hyp = *req.Hypervisor
	}
	res, err := s.co.CreateVM(requestID(r), req.Name, hyp)
	if err != nil {
		s.writeShardErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, VMResponse{
		VMInfo: vmInfoOf(s, res.VM),
		Cost: CostReport{
			SwitchesUpdated: res.Boot.SwitchesUpdated,
			LFTSMPs:         res.Boot.SMPs,
			SpanSMPs:        res.Boot.SMPs,
			ModelledUS:      res.Boot.ModelledTime.Microseconds(),
		},
	})
}

func (s *Server) shardDestroy(w http.ResponseWriter, r *http.Request, name string) {
	res, err := s.co.DestroyVM(requestID(r), name)
	if err != nil {
		s.writeShardErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DestroyResponse{
		Name: name,
		Cost: CostReport{
			SwitchesUpdated: res.Boot.SwitchesUpdated,
			LFTSMPs:         res.Boot.SMPs,
			SpanSMPs:        res.Boot.SMPs,
			ModelledUS:      res.Boot.ModelledTime.Microseconds(),
		},
	})
}

func (s *Server) shardMigrate(w http.ResponseWriter, r *http.Request, name string, dst topology.NodeID) {
	res, err := s.co.MigrateVM(requestID(r), name, dst)
	if err != nil {
		s.writeShardErr(w, err)
		return
	}
	rep := res.Rep
	writeJSON(w, http.StatusOK, MigrateResponse{
		Name:             name,
		From:             rep.From,
		To:               rep.To,
		LID:              uint16(res.VM.Addr.LID),
		AddressesChanged: rep.AddressesChanged,
		DowntimeUS:       rep.Downtime.Microseconds(),
		Cost: CostReport{
			SwitchesUpdated:  rep.Plan.SwitchesUpdated,
			LFTSMPs:          rep.Plan.SMPs,
			InvalidationSMPs: rep.Plan.InvalidationSMPs,
			HostSMPs:         rep.HostSMPs,
			SpanSMPs:         rep.Plan.SMPs,
			TraceSpan:        rep.Span,
			ModelledUS:       rep.Plan.ModelledTime.Microseconds(),
		},
	})
}

// vmInfoOf converts a shard VM record for the wire.
func vmInfoOf(s *Server, vm shard.VMState) VMInfo {
	desc := ""
	if n := s.c.SM.Topo.Node(vm.Hyp); n != nil {
		desc = n.Desc
	}
	return VMInfo{
		Name:    vm.Name,
		Node:    vm.Hyp,
		HypDesc: desc,
		VF:      vm.VF,
		LID:     uint16(vm.Addr.LID),
		GUID:    vm.Addr.GUID.String(),
		GID:     vm.Addr.GID.String(),
	}
}

// Coordinator exposes the shard coordinator (nil in single-actor mode) for
// tests and embedding drivers (ibsimload's in-process mode, the chaos
// engine's commit-gate hook).
func (s *Server) Coordinator() *shard.Coordinator { return s.co }

// runFrozen executes a fabric-wide command (reconfigure, reconcile) under a
// coordinator freeze, mirroring the single-actor loop's post-mutation tail
// (flight record + mutation log). resync republishes the shard snapshots
// afterwards so composed reads pick up state the command changed outside
// the shards.
func (s *Server) runFrozen(w http.ResponseWriter, cmd *command, resync bool) {
	var rep cmdReply
	if err := s.co.Freeze(func() {
		rep = s.execute(cmd)
		if resync {
			if err := s.co.Resync(); err != nil {
				s.log.Warn("shard resync failed", "err", err)
			}
		}
	}); err != nil {
		s.writeShardErr(w, err)
		return
	}
	gen := s.co.Gen()
	s.rec.RecordMutation(audit.Mutation{
		Op: cmd.kind.opName(), Name: cmd.name, RequestID: cmd.reqID,
		Status: rep.status, Gen: gen,
	})
	s.log.Info("mutation",
		"op", cmd.kind.opName(), "name", cmd.name, "request_id", cmd.reqID,
		"status", rep.status, "generation", gen)
	writeJSON(w, rep.status, rep.body)
}

// snapAudit publishes post-wave state and runs the fast audit: in
// single-actor mode via the loop's snapshot path, in sharded mode (running
// under a coordinator freeze) by resyncing the shards from the cloud and
// auditing the recomposed view. Returns the published generation and the
// violation count.
func (s *Server) snapAudit() (uint64, int) {
	if s.co != nil {
		if err := s.co.Resync(); err != nil {
			s.log.Warn("shard resync after wave failed", "err", err)
		}
		sn := s.compose()
		rep := s.aud.Run(sn.AuditView(), audit.ScopeFast)
		if rep.Total > 0 {
			s.log.Warn("audit violations after mutation",
				"generation", rep.Gen, "violations", rep.Total, "by_kind", rep.ByKind)
		}
		return sn.Gen, rep.Total
	}
	sn := s.buildSnapshot(s.snap.Load())
	s.snap.Store(sn)
	return sn.Gen, s.auditAfterMutation(sn)
}

// frozenFullAudit runs a full-scope audit with the control plane frozen: a
// consistent composition is guaranteed because no actor is mid-mutation.
func (s *Server) frozenFullAudit() {
	s.co.Freeze(func() { //nolint:errcheck // freeze fails only at shutdown
		rep := s.aud.Run(s.compose().AuditView(), audit.ScopeFull)
		if rep.Total > 0 {
			s.log.Warn("full audit violations (frozen)",
				"generation", rep.Gen, "violations", rep.Total, "by_kind", rep.ByKind)
		}
	})
}
