// Package api is the control-plane daemon around a vSwitch cloud: an HTTP
// surface over the orchestrator + subnet manager pair that cmd/ibsimd
// serves and cmd/ibsimload drives.
//
// The cloud and SM are single-threaded by design (the SM's operations
// mirror OpenSM's serial master thread), so the server runs every mutation
// through one command loop — an actor goroutine that owns the *cloud.Cloud
// exclusively. Handlers enqueue commands onto a bounded admission queue and
// wait for the loop's reply; a full queue is backpressure, reported as HTTP
// 429 with a Retry-After header rather than an unbounded goroutine pile-up.
//
// Reads never touch the cloud. After every mutation the loop publishes an
// immutable Snapshot (copy-on-write: LFT clones are reused across
// generations while their revision counters stand still), and the read
// endpoints — topology, VM listings, path walks — serve from whatever
// snapshot is current. Telemetry endpoints (/metrics, /v1/trace,
// /v1/events) read the registry and tracer directly; both are safe for
// concurrent use.
//
// Every mutation response carries a cost report in the paper's terms: n'
// switches updated, m' SMPs per switch (section VI), host SMPs, and the
// modelled reconfiguration time, cross-referenced to the telemetry span
// tree by root span ID so a client can audit the report against /v1/trace.
package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ibvsim/internal/audit"
	"ibvsim/internal/cloud"
	"ibvsim/internal/ib"
	"ibvsim/internal/shard"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// Config parameterises a Server.
type Config struct {
	// QueueDepth bounds the admission queue (commands accepted but not yet
	// executed). 0 means DefaultQueueDepth.
	QueueDepth int
	// RetryAfter is the hint returned with 429 responses. 0 means one second.
	RetryAfter time.Duration
	// AuditInterval is the cadence of full-scope background audits
	// (reachability + hygiene + installed-routing CDG). 0 disables the
	// cadence; the cheap post-mutation audit always runs.
	AuditInterval time.Duration
	// FlightDir, when set, is where the flight recorder writes violation
	// dumps as JSON files (created on first dump). Dumps are always kept
	// in memory and served at /v1/flightrecorder regardless.
	FlightDir string
	// FlightEntries caps the flight recorder's ring. 0 means the
	// recorder's default.
	FlightEntries int
	// Logger receives structured request/mutation/audit logs. nil means
	// discard.
	Logger *slog.Logger
	// Shards selects the sharded control plane: 0 or 1 runs the classic
	// single-actor loop (one shard IS one actor owning the whole fabric —
	// a 1-zone coordinator would add dispatch overhead and change the
	// per-mutation audit scope without buying any isolation, so sharding
	// begins at 2), ShardsAuto partitions one shard per pod (or leaf
	// group on 2-level fabrics), any positive count folds the pods into
	// that many zones. See internal/shard.
	Shards int
}

// ShardsAuto asks Config.Shards for one shard per derived fat-tree zone.
const ShardsAuto = -1

// DefaultQueueDepth is the admission-queue bound when Config leaves it 0.
const DefaultQueueDepth = 64

// Server owns a cloud behind a single-writer command loop and exposes it
// over HTTP. Construct with NewServer; the loop starts immediately. Use
// Handler for the mux and Shutdown to drain and stop.
type Server struct {
	c   *cloud.Cloud
	reg *telemetry.Registry
	tr  *telemetry.Tracer

	mux        *http.ServeMux
	cmds       chan *command
	retryAfter time.Duration

	snap atomic.Pointer[Snapshot]

	// opCtx is cancelled when a Shutdown deadline expires, aborting any
	// in-flight LFT distribution (the context threads down to the sm
	// worker pool) and terminating event streams.
	opCtx    context.Context
	opCancel context.CancelFunc

	mu       sync.RWMutex // guards closed and sends on cmds vs close(cmds)
	closed   bool
	loopDone chan struct{}

	// Observability: auditor + flight recorder (tentpole of the health
	// monitoring layer), structured logger, request-ID allocator.
	aud       *audit.Auditor
	rec       *audit.Recorder
	log       *slog.Logger
	reqSeq    atomic.Int64
	auditStop chan struct{} // nil when no cadence goroutine is running
	auditDone chan struct{}

	// co is the sharded control plane (nil in single-actor mode). When set,
	// the loop never starts: mutations run through the coordinator on their
	// request goroutines, and s.snap caches the lazily composed snapshot.
	co *shard.Coordinator

	// Loop-owned state (never touched by handlers).
	gen     uint64
	lftRevs map[topology.NodeID]lftIdentity

	// execGate is a test seam: when non-nil the loop rendezvouses twice
	// around every command (announce, then wait for release), letting tests
	// hold the loop mid-drain to fill the admission queue deterministically.
	// Must be set before the first command is admitted.
	execGate chan struct{}
}

// NewServer wraps a freshly bootstrapped cloud. The server takes exclusive
// ownership: the caller must not call cloud methods directly afterwards.
// With cfg.Shards > 1 (or ShardsAuto) the control plane is sharded (see
// internal/shard);
// an invalid shard setup (e.g. no hypervisors) panics, as it would have
// failed cloud bootstrap anyway.
func NewServer(c *cloud.Cloud, cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	hub := c.SM.Telemetry()
	s := &Server{
		c:          c,
		reg:        hub.Registry(),
		tr:         hub.Tracer(),
		mux:        http.NewServeMux(),
		cmds:       make(chan *command, cfg.QueueDepth),
		retryAfter: cfg.RetryAfter,
		loopDone:   make(chan struct{}),
		lftRevs:    map[topology.NodeID]lftIdentity{},
		log:        cfg.Logger,
	}
	s.rec = audit.NewRecorder(hub.Tracer(), cfg.FlightDir, cfg.FlightEntries)
	s.aud = audit.New(hub, s.rec, audit.Config{})
	s.WireTransitionMonitor()
	s.opCtx, s.opCancel = context.WithCancel(context.Background())
	s.routes()
	if cfg.Shards != 0 && cfg.Shards != 1 {
		if err := s.startSharded(cfg.Shards, cfg.QueueDepth); err != nil {
			panic(fmt.Sprintf("api: sharded control plane: %v", err))
		}
		close(s.loopDone) // no loop in sharded mode
		s.compose()
	} else {
		s.snap.Store(s.buildSnapshot(nil))
		go s.loop()
	}
	if cfg.AuditInterval > 0 {
		s.auditStop = make(chan struct{})
		s.auditDone = make(chan struct{})
		go s.auditLoop(cfg.AuditInterval)
	}
	return s
}

// WireTransitionMonitor installs the transient-deadlock monitor (section
// VI-C live) on the cloud's current subnet manager: the SM calls the hook
// on the actor goroutine the moment a distribution starts mixing Rold and
// Rnew, so reading SM state inside it is race free. NewServer wires the
// bootstrap SM; after an SM handover swaps a freshly adopted manager into
// the cloud, the orchestrating code (the scenario harness) must call this
// again — while no mutation is in flight — so the new SM's distributions
// stay monitored.
func (s *Server) WireTransitionMonitor() {
	s.c.SM.OnDistribute = func(old, target map[topology.NodeID]*ib.LFT) {
		dlids := make([]ib.LID, 0, 64)
		for _, tg := range s.c.SM.Targets() {
			dlids = append(dlids, tg.LID)
		}
		rep := s.aud.CheckTransition(s.c.SM.Topo, old, target, s.c.SM.NodeOfLID, dlids)
		if rep.Total > 0 {
			s.log.Warn("transient CDG violation during LFT distribution",
				"violations", rep.Total)
		}
	}
}

// Handler returns the HTTP handler serving the full API surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the current fabric snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

func (s *Server) routes() {
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("GET /v1/trace", "trace", s.handleTrace)
	s.handle("GET /v1/topology", "topology", s.handleTopology)
	s.handle("GET /v1/vms", "vms_list", s.handleListVMs)
	s.handle("GET /v1/vms/{name}", "vms_get", s.handleGetVM)
	s.handle("GET /v1/paths/{src}/{dst}", "paths", s.handlePath)
	s.handle("GET /v1/explain", "explain", s.handleExplain)
	s.handle("GET /v1/events", "events", s.handleEvents)
	s.handle("GET /v1/audit", "audit", s.handleAudit)
	s.handle("GET /v1/flightrecorder", "flightrecorder", s.handleFlightRecorder)
	s.handle("POST /v1/vms", "vms_create", s.handleCreateVM)
	s.handle("DELETE /v1/vms/{name}", "vms_destroy", s.handleDestroyVM)
	s.handle("POST /v1/vms/{name}/migrate", "vms_migrate", s.handleMigrateVM)
	s.handle("POST /v1/reconfigure", "reconfigure", s.handleReconfigure)
	s.handle("POST /v1/reconcile", "reconcile", s.handleReconcile)
}

// reqIDKey carries the per-request ID through the request context.
type reqIDKey struct{}

// requestID returns the ID assigned to the request by handle ("" outside
// the handler chain, e.g. in tests constructing bare requests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// handle registers a pattern with per-endpoint request counting, wall-clock
// latency histograms (api.latency.<op>_us) and request-ID assignment: an
// inbound X-Request-ID is honoured, otherwise one is allocated, and either
// way the ID is echoed on the response and threaded to the mutation log and
// the flight recorder.
func (s *Server) handle(pattern, op string, h http.HandlerFunc) {
	ctr := s.reg.Counter("api.requests." + op)
	hist := s.reg.WallHistogram("api.latency."+op+"_us", nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, reqID))
		h(w, r)
		ctr.Inc()
		hist.ObserveDuration(time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- read endpoints -------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.co != nil {
		vms := 0
		for _, sn := range s.co.Snaps() {
			vms += len(sn.VMs)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"generation": s.co.Gen(),
			"queue":      s.co.QueueLen(),
			"vms":        vms,
			"shards":     s.co.Shards(),
		})
		return
	}
	sn := s.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": sn.Gen,
		"queue":      len(s.cmds),
		"vms":        len(sn.VMs),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w) //nolint:errcheck
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	opts := telemetry.Options{IncludeWall: true, IncludeEvents: true}
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		s.tr.WriteJSON(w, opts) //nolint:errcheck
	case "chrome":
		// Trace Event Format: load the body straight into Perfetto.
		w.Header().Set("Content-Type", "application/json")
		s.tr.WriteChromeTrace(w, opts) //nolint:errcheck
	default:
		writeErr(w, http.StatusBadRequest, "unknown trace format %q (want json or chrome)", r.URL.Query().Get("format"))
	}
}

// TopologyResponse describes the fabric being served. Shards and
// ShardStats appear only in sharded mode.
type TopologyResponse struct {
	Fabric      string          `json:"fabric"`
	Switches    int             `json:"switches"`
	CAs         int             `json:"cas"`
	Model       string          `json:"model"`
	SMNode      topology.NodeID `json:"sm_node"`
	Generation  uint64          `json:"generation"`
	Shards      int             `json:"shards,omitempty"`
	ShardStats  []shard.Stats   `json:"shard_stats,omitempty"`
	Hypervisors []HypInfo       `json:"hypervisors"`
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot()
	resp := TopologyResponse{
		Fabric:      sn.Fabric,
		Switches:    len(sn.topo.Switches()),
		CAs:         len(sn.topo.CAs()),
		Model:       sn.Model,
		SMNode:      sn.SMNode,
		Generation:  sn.Gen,
		Hypervisors: sn.Hyps,
	}
	if s.co != nil {
		resp.Shards = s.co.Shards()
		resp.ShardStats = s.co.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListVMs(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": sn.Gen,
		"vms":        sn.VMs,
	})
}

func (s *Server) handleGetVM(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot()
	name := r.PathValue("name")
	for i := range sn.VMs {
		if sn.VMs[i].Name == name {
			writeJSON(w, http.StatusOK, sn.VMs[i])
			return
		}
	}
	writeErr(w, http.StatusNotFound, "no VM %q", name)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot()
	resp, err := sn.Path(r.PathValue("src"), r.PathValue("dst"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- mutation endpoints ---------------------------------------------------

// CreateVMRequest is the body of POST /v1/vms. Hypervisor pins placement;
// leaving it out delegates to the cloud's scheduler.
type CreateVMRequest struct {
	Name       string           `json:"name"`
	Hypervisor *topology.NodeID `json:"hypervisor,omitempty"`
}

func (s *Server) handleCreateVM(w http.ResponseWriter, r *http.Request) {
	var req CreateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, "missing VM name")
		return
	}
	if s.co != nil {
		s.shardCreate(w, r, req)
		return
	}
	cmd := &command{kind: opCreateVM, name: req.Name}
	if req.Hypervisor != nil {
		cmd.hyp = *req.Hypervisor
	} else {
		cmd.hyp = topology.NoNode
	}
	s.enqueue(w, r, cmd)
}

func (s *Server) handleDestroyVM(w http.ResponseWriter, r *http.Request) {
	if s.co != nil {
		s.shardDestroy(w, r, r.PathValue("name"))
		return
	}
	s.enqueue(w, r, &command{kind: opDestroyVM, name: r.PathValue("name")})
}

// MigrateVMRequest is the body of POST /v1/vms/{name}/migrate.
type MigrateVMRequest struct {
	Destination topology.NodeID `json:"destination"`
}

func (s *Server) handleMigrateVM(w http.ResponseWriter, r *http.Request) {
	var req MigrateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if s.co != nil {
		s.shardMigrate(w, r, r.PathValue("name"), req.Destination)
		return
	}
	s.enqueue(w, r, &command{kind: opMigrateVM, name: r.PathValue("name"), hyp: req.Destination})
}

func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	if s.co != nil {
		// Full rerouting needs the whole fabric quiesced: freeze every
		// shard, reroute, resync (a reroute does not move VMs, but the
		// composed snapshot must pick up the new tables via a fresh gen).
		s.runFrozen(w, &command{kind: opReconfigure, reqID: requestID(r)}, true)
		return
	}
	s.enqueue(w, r, &command{kind: opReconfigure})
}

// enqueue admits a command to the loop (or rejects with backpressure) and
// relays the loop's reply. The reply channel is buffered so the loop never
// blocks on a handler, even one whose client has disconnected.
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, cmd *command) {
	cmd.reqID = requestID(r)
	cmd.reply = make(chan cmdReply, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	admitted := false
	select {
	case s.cmds <- cmd:
		admitted = true
	default:
	}
	s.mu.RUnlock()
	if !admitted {
		s.reg.Counter("api.admission_rejects").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, "admission queue full (depth %d)", cap(s.cmds))
		return
	}
	s.reg.Gauge("api.queue_depth").Set(int64(len(s.cmds)))
	rep := <-cmd.reply
	writeJSON(w, rep.status, rep.body)
}

// Shutdown stops intake, drains the admission queue, and waits for the
// loop to exit. If ctx expires first, the in-flight operation's context is
// cancelled — aborting any LFT distribution mid-flight — and Shutdown
// still waits for the loop to finish its (now fast-failing) drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.cmds)
		if s.auditStop != nil {
			close(s.auditStop)
		}
	}
	s.mu.Unlock()
	var err error
	select {
	case <-s.loopDone:
	case <-ctx.Done():
		err = ctx.Err()
		s.opCancel()
		<-s.loopDone
	}
	if s.co != nil {
		if e := s.co.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	if s.auditDone != nil {
		<-s.auditDone
	}
	s.opCancel()
	return err
}
