package api

import (
	"fmt"
	"net/http"
	"testing"

	"ibvsim/internal/ib"
	"ibvsim/internal/sriov"
	"ibvsim/internal/topology"
)

// TestSnapshotFollowsProgrammedObjectSwap is the regression test for a
// copy-on-write staleness bug the chaos campaigns caught: the SM *replaces*
// the programmed LFT object on every fully-successful distribution (with a
// clone of the target, carrying the target's own revision counter), so a
// snapshot cache keyed on revision alone can keep serving the pre-reroute
// clone when the fresh object's revision coincides with the recorded one.
// After a link failure + reconfigure, the published snapshot then walks
// paths out the dead port while the SM itself is healthy.
//
// The sequence below reproduces the hazard: reconfigure (programmed objects
// swapped once), fail a trunk link and resweep directly on the SM, then
// reconfigure again (swapped again, revisions frequently colliding on a
// symmetric fabric). The snapshot must track the programmed tables exactly.
func TestSnapshotFollowsProgrammedObjectSwap(t *testing.T) {
	spec := topology.XGFTSpec{M: []int{3, 3}, W: []int{1, 3}}
	srv, ts := newFatTreeServer(t, spec, 2, sriov.VSwitchDynamic, Config{})
	cl := ts.Client()
	topo := srv.c.SM.Topo

	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconfigure", nil, nil); st != http.StatusOK {
		t.Fatalf("first reconfigure: status %d", st)
	}
	before := srv.Snapshot()

	// Fail one switch-to-switch link directly on the fabric, as the chaos
	// harness does between API commands. The loop is idle (the previous
	// reply was sent after its snapshot was published), so this does not
	// race the server.
	a, b, ap := trunkLink(t, topo)
	if err := topo.SetLinkState(a, ap, false); err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Fatalf("link %d<->%d was the only path; pick a redundant fabric", a, b)
	}
	if _, err := srv.c.SM.LightSweep(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.c.SM.Resweep(); err != nil {
		t.Fatal(err)
	}
	if st := doJSON(t, cl, "POST", ts.URL+"/v1/reconfigure", nil, nil); st != http.StatusOK {
		t.Fatalf("reconfigure after link failure: status %d", st)
	}

	// The reroute must have moved at least one table, otherwise this test
	// exercises nothing.
	sn := srv.Snapshot()
	moved := false
	for _, sw := range topo.Switches() {
		prog := srv.c.SM.ProgrammedLFT(sw)
		if prog == nil {
			t.Fatalf("switch %d has no programmed LFT", sw)
		}
		if sn.lfts[sw] == nil {
			t.Fatalf("snapshot has no LFT clone for switch %d", sw)
		}
		if !sn.lfts[sw].Equal(prog) {
			t.Errorf("switch %d: snapshot LFT diverges from programmed table (stale COW clone)", sw)
		}
		if before.lfts[sw] != nil && !before.lfts[sw].Equal(prog) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("reconfigure after link failure changed no table; test is vacuous")
	}

	// The user-visible symptom: a stale snapshot walks paths out the dead
	// port. Every CA pair must still resolve through the snapshot walker.
	cas := topo.CAs()
	for _, src := range cas {
		for _, dst := range cas {
			if src == dst {
				continue
			}
			url := fmt.Sprintf("%s/v1/paths/%d/%d", ts.URL, src, dst)
			var pr PathResponse
			if st := doJSON(t, cl, "GET", url, nil, &pr); st != http.StatusOK {
				t.Fatalf("path %d->%d: status %d (snapshot walks a dead route)", src, dst, st)
			}
		}
	}
}

// trunkLink returns the first switch-to-switch link (and a's port toward b).
func trunkLink(t *testing.T, topo *topology.Topology) (a, b topology.NodeID, ap ib.PortNum) {
	t.Helper()
	for _, sw := range topo.Switches() {
		n := topo.Node(sw)
		for i := 1; i < len(n.Ports); i++ {
			p := n.Ports[i]
			if p.Peer != topology.NoNode && p.Peer > sw && topo.Node(p.Peer).IsSwitch() {
				return sw, p.Peer, ib.PortNum(i)
			}
		}
	}
	t.Fatal("fabric has no switch-to-switch link")
	return 0, 0, 0
}
