package api

import (
	"fmt"
	"strconv"

	"ibvsim/internal/ib"
	"ibvsim/internal/topology"
)

// VMInfo is one VM in a snapshot (and in VM listings).
type VMInfo struct {
	Name    string          `json:"name"`
	Node    topology.NodeID `json:"hypervisor"`
	HypDesc string          `json:"hypervisor_desc,omitempty"`
	VF      int             `json:"vf"`
	LID     uint16          `json:"lid"`
	GUID    string          `json:"guid"`
	GID     string          `json:"gid,omitempty"`
}

// HypInfo is one hypervisor in a snapshot. Zone is the owning shard's zone
// in sharded mode (always 0 — and omitted — in single-actor mode).
type HypInfo struct {
	Node     topology.NodeID `json:"node"`
	Desc     string          `json:"desc"`
	LID      uint16          `json:"lid"`
	VFs      int             `json:"vfs"`
	Attached int             `json:"attached"`
	Zone     int             `json:"zone,omitempty"`
}

// Snapshot is an immutable view of the fabric at one generation, published
// by the command loop after every mutation and read lock-free by every GET
// handler. The LFT clones are copy-on-write: a table whose revision counter
// (ib.LFT.Rev) did not move between generations is shared with the previous
// snapshot rather than re-cloned, so steady-state snapshots after a one-LID
// migration clone only the switches that migration touched.
type Snapshot struct {
	Gen    uint64
	Fabric string
	Model  string
	SMNode topology.NodeID
	VMs    []VMInfo
	Hyps   []HypInfo

	topo      *topology.Topology // static after build; safe to share
	lidOf     map[topology.NodeID]ib.LID
	nodeOfLID map[ib.LID]topology.NodeID
	lfts      map[topology.NodeID]*ib.LFT // immutable clones
}

// lftIdentity is the copy-on-write cache key for one switch's programmed
// table. The revision alone is not enough: the SM *replaces* the programmed
// LFT object on every fully-successful distribution (with a clone of the
// target, which carries the target's own revision counter) and on SM
// handover adoption — a fresh object can coincidentally repeat the last
// recorded revision while holding different routes. Keying on (object,
// revision) re-clones whenever either moves.
type lftIdentity struct {
	src *ib.LFT
	rev uint64
}

// buildSnapshot runs on the command loop (or in NewServer before the loop
// starts) — it reads the cloud directly, which no published snapshot ever
// does.
func (s *Server) buildSnapshot(prev *Snapshot) *Snapshot {
	s.gen++
	topo := s.c.SM.Topo
	sn := &Snapshot{
		Gen:    s.gen,
		Fabric: topo.String(),
		Model:  s.c.Model.String(),
		SMNode: s.c.SM.SMNode,
		topo:   topo,
		lidOf:  map[topology.NodeID]ib.LID{},
		// One pass over the SM's address maps. The per-node alternative
		// (ExtraLIDsOf for every CA) rescans the whole extra-LID map per
		// node — O(CAs x LIDs) per snapshot, which at 10^4 nodes turned
		// every mutation into seconds of map iteration.
		nodeOfLID: s.c.SM.AddressView(),
		lfts:      map[topology.NodeID]*ib.LFT{},
	}

	for _, id := range topo.Switches() {
		if lid := s.c.SM.LIDOf(id); lid != ib.LIDUnassigned {
			sn.lidOf[id] = lid
		}
	}
	for _, id := range topo.CAs() {
		if lid := s.c.SM.LIDOf(id); lid != ib.LIDUnassigned {
			sn.lidOf[id] = lid
		}
	}

	for _, hn := range s.c.Hypervisors() {
		h := s.c.Hypervisor(hn)
		sn.Hyps = append(sn.Hyps, HypInfo{
			Node:     hn,
			Desc:     topo.Node(hn).Desc,
			LID:      uint16(s.c.SM.LIDOf(hn)),
			VFs:      h.HCA.NumVFs(),
			Attached: len(h.HCA.AttachedVFs()),
		})
	}

	for _, name := range s.c.VMs() {
		vm := s.c.VM(name)
		sn.VMs = append(sn.VMs, VMInfo{
			Name:    vm.Name,
			Node:    vm.Hyp,
			HypDesc: topo.Node(vm.Hyp).Desc,
			VF:      vm.VF,
			LID:     uint16(vm.Addr.LID),
			GUID:    vm.Addr.GUID.String(),
			GID:     vm.Addr.GID.String(),
		})
	}

	clones := 0
	for _, sw := range topo.Switches() {
		cur := s.c.SM.ProgrammedLFT(sw)
		if cur == nil {
			continue
		}
		id := lftIdentity{src: cur, rev: cur.Rev()}
		if prev != nil && prev.lfts[sw] != nil && s.lftRevs[sw] == id {
			sn.lfts[sw] = prev.lfts[sw]
		} else {
			sn.lfts[sw] = cur.Clone()
			s.lftRevs[sw] = id
			clones++
		}
	}
	s.reg.Counter("api.snapshot.lft_clones").Add(int64(clones))
	s.reg.Gauge("api.snapshot.generation").Set(int64(s.gen))
	return sn
}

// PathHop is one switch traversal of a walked path.
type PathHop struct {
	Switch topology.NodeID `json:"switch"`
	Desc   string          `json:"desc"`
	Egress ib.PortNum      `json:"egress_port"`
}

// PathResponse answers GET /v1/paths/{src}/{dst}: the switch-by-switch
// route the programmed LFTs give traffic from src to dst's LID.
type PathResponse struct {
	Src        string          `json:"src"`
	Dst        string          `json:"dst"`
	SrcNode    topology.NodeID `json:"src_node"`
	DstNode    topology.NodeID `json:"dst_node"`
	DstLID     uint16          `json:"dst_lid"`
	Generation uint64          `json:"generation"`
	Hops       []PathHop       `json:"hops"`
}

// resolve maps a path endpoint token — a VM name or a numeric node ID — to
// the node traffic enters/leaves the fabric at and the LID addressing it.
func (sn *Snapshot) resolve(token string) (topology.NodeID, ib.LID, error) {
	for i := range sn.VMs {
		if sn.VMs[i].Name == token {
			return sn.VMs[i].Node, ib.LID(sn.VMs[i].LID), nil
		}
	}
	id, err := strconv.Atoi(token)
	if err != nil {
		return topology.NoNode, 0, fmt.Errorf("no VM or node %q", token)
	}
	node := topology.NodeID(id)
	if sn.topo.Node(node) == nil {
		return topology.NoNode, 0, fmt.Errorf("no node %d", node)
	}
	lid, ok := sn.lidOf[node]
	if !ok {
		return topology.NoNode, 0, fmt.Errorf("node %d has no LID", node)
	}
	return node, lid, nil
}

// maxPathHops bounds the LFT walk; any sane fabric routes in far fewer,
// so hitting it means the programmed tables loop.
const maxPathHops = 64

// Path walks dst's LID through the snapshot's LFT clones starting at src's
// leaf switch — the same walk routing.Verify does, but against the
// *programmed* (distributed) tables and served concurrently with mutations.
func (sn *Snapshot) Path(src, dst string) (PathResponse, error) {
	var resp PathResponse
	srcNode, _, err := sn.resolve(src)
	if err != nil {
		return resp, err
	}
	dstNode, dstLID, err := sn.resolve(dst)
	if err != nil {
		return resp, err
	}
	resp = PathResponse{
		Src: src, Dst: dst,
		SrcNode: srcNode, DstNode: dstNode,
		DstLID: uint16(dstLID), Generation: sn.Gen,
		Hops: []PathHop{},
	}
	if srcNode == dstNode {
		return resp, nil
	}
	cur := srcNode
	if !sn.topo.Node(cur).IsSwitch() {
		cur = sn.topo.LeafSwitchOf(cur)
		if cur == topology.NoNode {
			return resp, fmt.Errorf("node %d has no connected leaf switch", srcNode)
		}
	}
	for range [maxPathHops]struct{}{} {
		lft := sn.lfts[cur]
		if lft == nil {
			return resp, fmt.Errorf("switch %d has no programmed LFT", cur)
		}
		out := lft.Get(dstLID)
		if out == ib.DropPort {
			return resp, fmt.Errorf("LID %d drops at switch %d", dstLID, cur)
		}
		node := sn.topo.Node(cur)
		if int(out) >= len(node.Ports) {
			return resp, fmt.Errorf("switch %d routes LID %d to missing port %d", cur, dstLID, out)
		}
		port := node.Ports[out]
		if port.Peer == topology.NoNode || !port.Up {
			return resp, fmt.Errorf("switch %d routes LID %d out a down port %d", cur, dstLID, out)
		}
		resp.Hops = append(resp.Hops, PathHop{Switch: cur, Desc: node.Desc, Egress: out})
		if port.Peer == dstNode {
			return resp, nil
		}
		peer := sn.topo.Node(port.Peer)
		if !peer.IsSwitch() {
			return resp, fmt.Errorf("LID %d delivered to wrong CA %d (want %d)", dstLID, port.Peer, dstNode)
		}
		cur = port.Peer
	}
	return resp, fmt.Errorf("no path after %d hops: LFTs loop", maxPathHops)
}
