package api

import (
	"net/http"
	"sort"
	"time"

	"ibvsim/internal/audit"
	"ibvsim/internal/ib"
)

// AuditView adapts the snapshot for the auditor. Everything handed over is
// immutable (the snapshot's own maps and LFT clones are never written after
// publication), so views may be audited concurrently with mutations.
func (sn *Snapshot) AuditView() *audit.View {
	lids := make([]ib.LID, 0, len(sn.nodeOfLID))
	for l := range sn.nodeOfLID {
		lids = append(lids, l)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	vms := make([]audit.VMBinding, len(sn.VMs))
	for i, vm := range sn.VMs {
		vms[i] = audit.VMBinding{Name: vm.Name, LID: ib.LID(vm.LID), Hyp: vm.Node}
	}
	return &audit.View{
		Topo:       sn.topo,
		Gen:        sn.Gen,
		LFTs:       sn.lfts,
		NodeOfLID:  sn.nodeOfLID,
		ActiveLIDs: lids,
		VMs:        vms,
	}
}

// Auditor exposes the server's auditor (for tests and embedding daemons).
func (s *Server) Auditor() *audit.Auditor { return s.aud }

// auditOpScoped runs the op-scoped reachability audit shared by both
// control planes: prove the LID columns a mutation touched still route to
// their owners from the SM's leaf, and that the new binding (if any)
// agrees with the address map. O(touched LIDs x path length), not
// O(fabric) — the per-mutation audit discipline that lets the control
// plane scale (DESIGN.md section 14). The classic single-actor loop
// adopted it from the sharded mode, so the two architectures differ only
// in snapshot-publish and queue structure, not in audit cost; fabric-wide
// invariant passes remain on the audit cadence, the reconciler's waves and
// GET /v1/audit?run=full.
func (s *Server) auditOpScoped(gen uint64, lids []ib.LID, vms []audit.VMBinding) {
	if len(lids) == 0 {
		return
	}
	if smLID := s.c.SM.LIDOf(s.c.SM.SMNode); smLID != ib.LIDUnassigned {
		lids = append(append(make([]ib.LID, 0, len(lids)+1), lids...), smLID)
	}
	v := &audit.View{
		Topo:       s.c.SM.Topo,
		Gen:        gen,
		LFTOf:      s.c.SM.ProgrammedLFT,
		NodeOfLID:  s.c.SM.ResolveLIDs(lids),
		ActiveLIDs: lids,
		VMs:        vms,
	}
	if rep := s.aud.Run(v, audit.ScopeReach); rep.Total > 0 {
		s.log.Warn("audit violations after mutation",
			"generation", rep.Gen, "violations", rep.Total, "by_kind", rep.ByKind)
	}
}

// auditAfterMutation runs the fast invariant families against the snapshot
// the loop just published. It runs on the actor goroutine — before the
// client gets its reply — so a response to a corrupting mutation is always
// preceded by the violation being counted and flight-recorded. Fabric-wide
// commands (reconfigure, reconcile) and the reconciler's waves use it; VM
// lifecycle mutations audit op-scoped instead (auditOpScoped). It returns
// the violation count so multi-step operations (the reconciler's waves) can
// gate each step on a clean fabric.
func (s *Server) auditAfterMutation(sn *Snapshot) int {
	rep := s.aud.Run(sn.AuditView(), audit.ScopeFast)
	if rep.Total > 0 {
		s.log.Warn("audit violations after mutation",
			"generation", rep.Gen, "violations", rep.Total, "by_kind", rep.ByKind)
	}
	return rep.Total
}

// auditLoop is the cadence goroutine: a full-scope audit (reachability +
// hygiene + installed-routing CDG) of whatever snapshot is current, every
// interval, until Shutdown.
func (s *Server) auditLoop(interval time.Duration) {
	defer close(s.auditDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.auditStop:
			return
		case <-tick.C:
			if s.co != nil {
				// Sharded: a consistent fabric-wide view only exists with
				// the shards quiesced; freeze, compose, audit.
				s.frozenFullAudit()
				continue
			}
			rep := s.aud.Run(s.snap.Load().AuditView(), audit.ScopeFull)
			if rep.Total > 0 {
				s.log.Warn("cadence audit violations",
					"generation", rep.Gen, "violations", rep.Total, "by_kind", rep.ByKind)
			}
		}
	}
}

// handleAudit answers GET /v1/audit: cumulative audit counters plus the
// most recent report. ?run=full first runs a synchronous full-scope audit
// against the current snapshot — safe from any goroutine, and what the CI
// smoke test calls after its load run.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("run") == "full" {
		if s.co != nil {
			s.frozenFullAudit()
		} else {
			s.aud.Run(s.snap.Load().AuditView(), audit.ScopeFull)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"runs":             s.aud.Runs(),
		"violations_total": s.aud.ViolationsTotal(),
		"dumps":            s.rec.Dumps(),
		"last":             s.aud.Last(),
	})
}

// handleFlightRecorder answers GET /v1/flightrecorder: the retained ring
// and the last violation dump (dumps also land on disk when the server was
// configured with a flight directory).
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"dumps":     s.rec.Dumps(),
		"entries":   s.rec.Entries(),
		"last_dump": s.rec.LastDump(),
	})
}
