// Package audit is the fabric health auditor: a continuously runnable
// checker that verifies the subnet manager's view of the fabric against
// three invariant families.
//
//   - Reachability: every active LID (a VF with a VM, a PF, a switch) is
//     reachable from every other endpoint via hop-by-hop LFT walks, with no
//     forwarding loops, black holes or misdeliveries.
//   - LID hygiene: forwarding entries, the LID address map and the VM
//     bindings agree — no forwarding entry points at a LID nobody owns, and
//     no VM's LID resolves to a node other than its hypervisor.
//   - Transient deadlock freedom: while an LFT distribution is in flight
//     the fabric holds an arbitrary mixture of the old and new routing
//     functions, so the union CDG Rold ∪ Rnew must be acyclic (the paper's
//     section VI-C hazard, run as a live monitor via CheckTransition
//     instead of only the offline transition experiment).
//
// The auditor is passive and lock-free with respect to the fabric: it runs
// against immutable copy-on-write views (the control-plane daemon's
// snapshots), so it can run concurrently with mutations at any cadence.
// Results feed the telemetry registry (audit.runs, audit.violations.<kind>)
// and an audit span per pass; when a pass finds violations, the flight
// recorder captures the recent mutation/event window to a post-mortem dump.
package audit

import (
	"fmt"
	"sync"
	"time"

	"ibvsim/internal/ib"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// Kind classifies one invariant violation.
type Kind string

// The violation vocabulary. Blackhole/loop/misroute come from LFT walks,
// stale_entry/lid_conflict from the hygiene pass, deadlock from the CDG of
// the installed routing, transient_cdg from the union CDG of an in-flight
// distribution (section VI-C).
const (
	KindBlackhole    Kind = "blackhole"
	KindLoop         Kind = "loop"
	KindMisroute     Kind = "misroute"
	KindStaleEntry   Kind = "stale_entry"
	KindLIDConflict  Kind = "lid_conflict"
	KindDeadlock     Kind = "deadlock"
	KindTransientCDG Kind = "transient_cdg"
)

// Violation is one detected invariant breach.
type Violation struct {
	Kind   Kind   `json:"kind"`
	LID    uint16 `json:"lid,omitempty"`
	Node   string `json:"node,omitempty"` // description of the node at fault
	Detail string `json:"detail"`
	// Provenance is the write stamp of the offending LFT block when the
	// violation pins a concrete forwarding entry: the mutation, span and
	// phase that installed the bad route. Flight-recorder dumps carry it, so
	// a post-mortem names the culprit operation instead of just the symptom.
	Provenance *ib.Provenance `json:"provenance,omitempty"`
}

// Scope selects how much one audit pass checks.
type Scope uint8

const (
	// ScopeFast runs reachability and hygiene — cheap enough to run inline
	// after every control-plane mutation.
	ScopeFast Scope = iota
	// ScopeFull adds the deadlock check (CDG of the installed routing),
	// which walks every (destination, switch) pair. Run on a cadence.
	ScopeFull
	// ScopeReach runs reachability and the VM-binding checks but skips the
	// stale-entry sweep (which walks every switch × every LID and needs a
	// complete LID map). It is the op-scoped pass sharded control planes
	// run after each mutation, with ActiveLIDs = just the LID columns the
	// op touched; fabric-wide hygiene runs at quiesce points instead.
	ScopeReach
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeFull:
		return "full"
	case ScopeReach:
		return "reach"
	}
	return "fast"
}

// Report is the outcome of one audit pass.
type Report struct {
	Gen             uint64         `json:"generation"`
	Scope           string         `json:"scope"`
	LIDsChecked     int            `json:"lids_checked"`
	SwitchesChecked int            `json:"switches_checked"`
	Total           int            `json:"total"`
	ByKind          map[string]int `json:"by_kind,omitempty"`
	// Violations carries at most Config.MaxViolations entries; Total is
	// always the true count and Truncated marks a capped list.
	Violations []Violation `json:"violations,omitempty"`
	Truncated  bool        `json:"truncated,omitempty"`
	WallUS     int64       `json:"wall_us"`
}

// Config parameterises an Auditor.
type Config struct {
	// MaxViolations caps the violation detail kept per report (the counts
	// stay exact). 0 means DefaultMaxViolations.
	MaxViolations int
}

// DefaultMaxViolations bounds per-report violation detail.
const DefaultMaxViolations = 256

// Auditor runs audit passes and keeps the most recent report. All methods
// are safe for concurrent use: passes run against immutable views, counters
// are atomic, and the last report sits behind a mutex.
type Auditor struct {
	reg *telemetry.Registry
	tr  *telemetry.Tracer
	rec *Recorder
	cfg Config

	runs  *telemetry.Counter
	total *telemetry.Counter

	mu   sync.Mutex
	last *Report
}

// New returns an auditor reporting into the hub's registry and tracer.
// rec may be nil (no flight recording); hub may be nil (no telemetry).
func New(hub *telemetry.Hub, rec *Recorder, cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	a := &Auditor{
		reg: hub.Registry(),
		tr:  hub.Tracer(),
		rec: rec,
		cfg: cfg,
	}
	a.runs = a.reg.Counter("audit.runs")
	a.total = a.reg.Counter("audit.violations_total")
	return a
}

// Recorder returns the flight recorder the auditor dumps to (may be nil).
func (a *Auditor) Recorder() *Recorder { return a.rec }

// Last returns the most recent report, or nil if no pass has run.
func (a *Auditor) Last() *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last
}

// Runs returns the number of passes run so far.
func (a *Auditor) Runs() int64 { return a.runs.Value() }

// ViolationsTotal returns the cumulative violation count across all passes
// (including transition checks).
func (a *Auditor) ViolationsTotal() int64 { return a.total.Value() }

// Run audits one immutable fabric view and returns the report. Violations
// bump audit.violations.<kind> counters and trigger a flight-recorder dump.
func (a *Auditor) Run(v *View, scope Scope) *Report {
	start := time.Now()
	span := a.tr.Start(telemetry.SpanAudit, scope.String())
	var c collector
	c.max = a.cfg.MaxViolations

	checkReachability(v, &c)
	checkBindings(v, &c)
	if scope != ScopeReach {
		checkStaleEntries(v, &c)
	}
	if scope == ScopeFull {
		checkInstalledCDG(v, &c)
	}

	rep := &Report{
		Gen:             v.Gen,
		Scope:           scope.String(),
		LIDsChecked:     len(v.ActiveLIDs),
		SwitchesChecked: len(v.Topo.Switches()),
		Total:           c.total,
		ByKind:          c.byKind,
		Violations:      c.kept,
		Truncated:       c.total > len(c.kept),
		WallUS:          time.Since(start).Microseconds(),
	}
	a.finish(span, rep)
	return rep
}

// finish publishes a report: counters, span attributes, the last-report
// slot, and — on violations — a flight-recorder dump.
func (a *Auditor) finish(span *telemetry.Span, rep *Report) {
	a.runs.Inc()
	a.total.Add(int64(rep.Total))
	for kind, n := range rep.ByKind {
		a.reg.Counter("audit.violations." + kind).Add(int64(n))
	}
	a.reg.Gauge("audit.last_violations").Set(int64(rep.Total))
	a.reg.Gauge("audit.last_generation").Set(int64(rep.Gen))
	a.reg.WallHistogram("audit.run_wall_us", nil).Observe(rep.WallUS)
	span.SetAttr("generation", int64(rep.Gen))
	span.SetAttr("lids", rep.LIDsChecked)
	span.SetAttr("violations", rep.Total)
	span.End()
	a.mu.Lock()
	a.last = rep
	a.mu.Unlock()
	if rep.Total > 0 && a.rec != nil {
		a.rec.Dump(rep) //nolint:errcheck // dump-to-disk failure must not fail the audit
	}
}

// collector accumulates violations with exact counts and capped detail.
type collector struct {
	max    int
	total  int
	byKind map[string]int
	kept   []Violation
}

func (c *collector) add(v Violation) {
	c.total++
	if c.byKind == nil {
		c.byKind = map[string]int{}
	}
	c.byKind[string(v.Kind)]++
	if len(c.kept) < c.max {
		c.kept = append(c.kept, v)
	}
}

func (c *collector) addf(kind Kind, lid ib.LID, node string, format string, args ...any) {
	c.add(Violation{Kind: kind, LID: uint16(lid), Node: node, Detail: fmt.Sprintf(format, args...)})
}

// VMBinding is one VM's addressing claim, checked against the LID map.
type VMBinding struct {
	Name string          `json:"name"`
	LID  ib.LID          `json:"lid"`
	Hyp  topology.NodeID `json:"hypervisor"`
}
