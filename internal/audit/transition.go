package audit

import (
	"fmt"
	"time"

	"ibvsim/internal/cdg"
	"ibvsim/internal/ib"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// mapRoutes adapts a plain LFT map to cdg.LFTRoutes so the transition check
// can build CDGs for the old and new routing functions independently of the
// subnet manager's live resolver (which always answers from programmed).
type mapRoutes struct {
	lfts   map[topology.NodeID]*ib.LFT
	nodeOf func(ib.LID) topology.NodeID
}

func (m mapRoutes) SwitchRoute(sw topology.NodeID, dlid ib.LID) ib.PortNum {
	lft := m.lfts[sw]
	if lft == nil {
		return ib.DropPort
	}
	return lft.Get(dlid)
}

func (m mapRoutes) NodeOf(l ib.LID) topology.NodeID { return m.nodeOf(l) }

// CheckTransition proves invariant family (c) for an in-flight LFT
// distribution: while switches are being reprogrammed the fabric holds an
// arbitrary mixture of the old routing function (the programmed tables) and
// the new one (the targets), so the union CDG Rold ∪ Rnew — not either CDG
// alone — must be acyclic (the paper's section VI-C transient hazard).
//
// The subnet manager calls this through its OnDistribute hook at the moment
// a distribution fans out, i.e. exactly when the mixture becomes possible.
// A cycle is counted as a transient_cdg violation and triggers a flight
// dump; distribution itself is not blocked (the monitor observes, the
// mitigation policy in core decides).
//
// Like checkInstalledCDG, the analysis covers CA-owned destinations only:
// switch-destined traffic is VL15 management, outside data-VL deadlock.
func (a *Auditor) CheckTransition(t *topology.Topology, old, target map[topology.NodeID]*ib.LFT,
	nodeOf func(ib.LID) topology.NodeID, dlids []ib.LID) *Report {
	start := time.Now()
	span := a.tr.Start(telemetry.SpanAudit, "transition")
	var c collector
	c.max = a.cfg.MaxViolations

	dlids = dataLIDs(t, dlids, nodeOf)
	// The switch-only builder: cycle verdicts are identical (CA injection
	// channels are sources) and this check runs on every distribution
	// fan-out, so its cost matters at scale.
	gOld := cdg.BuildSwitchCDG(t, mapRoutes{old, nodeOf}, dlids)
	gNew := cdg.BuildSwitchCDG(t, mapRoutes{target, nodeOf}, dlids)
	union := cdg.Union(gOld, gNew)
	span.SetAttr("old_edges", gOld.NumEdges())
	span.SetAttr("new_edges", gNew.NumEdges())
	span.SetAttr("union_edges", union.NumEdges())

	if cyc := union.FindCycle(); cyc != nil {
		oldCyclic := gOld.HasCycle()
		newCyclic := gNew.HasCycle()
		c.add(Violation{
			Kind: KindTransientCDG,
			Detail: fmt.Sprintf(
				"union CDG of in-flight distribution has a cycle (old cyclic=%v, new cyclic=%v): %s",
				oldCyclic, newCyclic, cycleString(cyc)),
		})
	}

	rep := &Report{
		Scope:           "transition",
		LIDsChecked:     len(dlids),
		SwitchesChecked: len(t.Switches()),
		Total:           c.total,
		ByKind:          c.byKind,
		Violations:      c.kept,
		Truncated:       c.total > len(c.kept),
		WallUS:          time.Since(start).Microseconds(),
	}
	a.finish(span, rep)
	return rep
}
