package audit

import (
	"testing"

	"ibvsim/internal/ib"
	"ibvsim/internal/topology"
)

// Edge-case hardening: the auditor must degrade gracefully — never panic —
// on fabrics the chaos campaigns can momentarily produce: switchless
// topologies, empty views with nil maps, and views whose switches have no
// programmed tables at all.

// TestZeroSwitchFabric audits a fabric of two CAs linked back-to-back:
// no switches, no LFTs, nothing to walk. Both scopes must complete with
// zero violations (the LIDs are owned; there is simply no forwarding state
// to contradict them).
func TestZeroSwitchFabric(t *testing.T) {
	topo := topology.New("ca-pair")
	c0 := topo.AddCA("c0")
	c1 := topo.AddCA("c1")
	if err := topo.Connect(c0, 1, c1, 1); err != nil {
		t.Fatal(err)
	}
	v := &View{
		Topo:       topo,
		Gen:        1,
		LFTs:       map[topology.NodeID]*ib.LFT{},
		NodeOfLID:  map[ib.LID]topology.NodeID{1: c0, 2: c1},
		ActiveLIDs: []ib.LID{1, 2},
		VMs:        []VMBinding{{Name: "vm-a", LID: 1, Hyp: c0}},
	}
	a, _ := newAuditor(t)
	for _, scope := range []Scope{ScopeFast, ScopeFull} {
		rep := a.Run(v, scope)
		if rep.Total != 0 {
			t.Fatalf("scope %s: %d violations on a switchless fabric: %+v",
				scope, rep.Total, rep.Violations)
		}
		if rep.SwitchesChecked != 0 {
			t.Fatalf("scope %s: SwitchesChecked = %d, want 0", scope, rep.SwitchesChecked)
		}
		if rep.LIDsChecked != 2 {
			t.Fatalf("scope %s: LIDsChecked = %d, want 2", scope, rep.LIDsChecked)
		}
	}
}

// TestEmptyViewNilMaps audits the degenerate view: an empty topology and
// every optional field left nil. Both scopes must complete without panics.
func TestEmptyViewNilMaps(t *testing.T) {
	v := &View{Topo: topology.New("empty")}
	a, _ := newAuditor(t)
	for _, scope := range []Scope{ScopeFast, ScopeFull} {
		rep := a.Run(v, scope)
		if rep.Total != 0 || rep.LIDsChecked != 0 || rep.SwitchesChecked != 0 {
			t.Fatalf("scope %s: nonzero report on empty view: %+v", scope, rep)
		}
	}
}

// TestSwitchesWithoutTables audits a fabric whose switches exist but have
// no programmed LFTs — the state a freshly swept, never-routed fabric is
// in. Every active CA LID must be reported as blackholed at the entry
// switch (not panic, not silently pass).
func TestSwitchesWithoutTables(t *testing.T) {
	v, _, _ := buildLine(t)
	v.LFTs = map[topology.NodeID]*ib.LFT{}
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFull)
	if rep.Total == 0 {
		t.Fatal("unprogrammed switches audited clean")
	}
	if rep.ByKind[string(KindBlackhole)] == 0 {
		t.Fatalf("expected blackhole violations, got %+v", rep.ByKind)
	}
}

// TestDrainedActiveLIDs audits a view whose ActiveLIDs list is empty while
// forwarding state still exists — a fully-drained server (every VM
// destroyed) keeps PF/switch routes programmed. Entries for LIDs that are
// still owned must not be reported stale; only a truly orphaned route is.
func TestDrainedActiveLIDs(t *testing.T) {
	v, sws, _ := buildLine(t)
	v.ActiveLIDs = nil
	v.VMs = nil
	a, _ := newAuditor(t)
	if rep := a.Run(v, ScopeFull); rep.Total != 0 {
		t.Fatalf("drained view audited dirty: %+v", rep.Violations)
	}

	// Orphan one route (LID 12 owned by nobody): hygiene must flag it even
	// with no active destinations.
	v.LFTs[sws[0]].Set(12, 1)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindStaleEntry)] == 0 {
		t.Fatalf("orphaned route not reported on drained view: %+v", rep.ByKind)
	}
}
