package audit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDumpFilenamesNeverCollide is the regression test for the dump-naming
// scheme: two recorders sharing one directory (each with its own dump
// counter starting at 1) dump back-to-back — well inside one second — and
// every dump must land in its own file.
func TestDumpFilenamesNeverCollide(t *testing.T) {
	dir := t.TempDir()
	ra := NewRecorder(nil, dir, 8)
	rb := NewRecorder(nil, dir, 8)
	reason := &Report{Gen: 3, Scope: "full", Total: 1}

	paths := map[string]bool{}
	for i := 0; i < 3; i++ {
		for _, r := range []*Recorder{ra, rb} {
			d, err := r.Dump(reason)
			if err != nil {
				t.Fatal(err)
			}
			if d.File == "" {
				t.Fatal("dump with a directory configured has no File")
			}
			if paths[d.File] {
				t.Fatalf("dump filename %s reused", d.File)
			}
			paths[d.File] = true
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("6 dumps left %d files on disk (collision overwrote one): %v", len(files), files)
	}
}

// TestDumpCarriesMeta checks SetMeta context lands in the dump — both the
// in-memory one and the JSON on disk — and that empty values remove keys.
func TestDumpCarriesMeta(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(nil, dir, 8)
	r.SetMeta("campaign", "corruption-probe")
	r.SetMeta("seed", "42")
	r.SetMeta("step", "17")
	r.SetMeta("step", "18") // last write wins
	r.SetMeta("scratch", "x")
	r.SetMeta("scratch", "") // removed

	d, err := r.Dump(&Report{Gen: 1, Total: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"campaign": "corruption-probe", "seed": "42", "step": "18"}
	if len(d.Meta) != len(want) {
		t.Fatalf("meta = %v, want %v", d.Meta, want)
	}
	for k, v := range want {
		if d.Meta[k] != v {
			t.Errorf("meta[%s] = %q, want %q", k, d.Meta[k], v)
		}
	}

	data, err := os.ReadFile(d.File)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Dump
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Meta["seed"] != "42" || onDisk.File != d.File {
		t.Fatalf("on-disk dump meta/file wrong: %+v", onDisk)
	}

	// Later dumps see later meta, earlier dumps keep their copy.
	r.SetMeta("step", "19")
	d2, err := r.Dump(&Report{Gen: 2, Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Meta["step"] != "19" || d.Meta["step"] != "18" {
		t.Fatalf("meta not copied per dump: d=%v d2=%v", d.Meta, d2.Meta)
	}
}
