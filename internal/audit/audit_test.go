package audit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibvsim/internal/ib"
	"ibvsim/internal/telemetry"
	"ibvsim/internal/topology"
)

// buildLine is the smallest auditable fabric: two switches in a line, one
// CA each. LIDs: s0=1 s1=2 c0=10 c1=11. The returned view routes everything
// correctly; tests corrupt it from there.
func buildLine(t *testing.T) (*View, [2]topology.NodeID, [2]topology.NodeID) {
	t.Helper()
	topo := topology.New("line")
	s0 := topo.AddSwitch(4, "s0")
	s1 := topo.AddSwitch(4, "s1")
	c0 := topo.AddCA("c0")
	c1 := topo.AddCA("c1")
	for _, err := range []error{
		topo.Connect(s0, 1, s1, 1),
		topo.Connect(c0, 1, s0, 2),
		topo.Connect(c1, 1, s1, 2),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	l0 := ib.NewLFT(16)
	l0.Set(2, 1)
	l0.Set(10, 2)
	l0.Set(11, 1)
	l1 := ib.NewLFT(16)
	l1.Set(1, 1)
	l1.Set(10, 1)
	l1.Set(11, 2)
	v := &View{
		Topo: topo,
		Gen:  7,
		LFTs: map[topology.NodeID]*ib.LFT{s0: l0, s1: l1},
		NodeOfLID: map[ib.LID]topology.NodeID{
			1: s0, 2: s1, 10: c0, 11: c1,
		},
		ActiveLIDs: []ib.LID{1, 2, 10, 11},
	}
	return v, [2]topology.NodeID{s0, s1}, [2]topology.NodeID{c0, c1}
}

func newAuditor(t *testing.T) (*Auditor, *telemetry.Hub) {
	t.Helper()
	hub := telemetry.NewHub()
	return New(hub, NewRecorder(hub.Trace, "", 0), Config{}), hub
}

func TestCleanFabricZeroViolations(t *testing.T) {
	v, _, _ := buildLine(t)
	a, hub := newAuditor(t)
	rep := a.Run(v, ScopeFull)
	if rep.Total != 0 {
		t.Fatalf("clean fabric: got %d violations: %+v", rep.Total, rep.Violations)
	}
	if rep.Gen != 7 || rep.Scope != "full" || rep.LIDsChecked != 4 || rep.SwitchesChecked != 2 {
		t.Fatalf("bad report header: %+v", rep)
	}
	if a.Runs() != 1 || a.ViolationsTotal() != 0 {
		t.Fatalf("counters: runs=%d violations=%d", a.Runs(), a.ViolationsTotal())
	}
	if a.Last() != rep {
		t.Fatal("Last() should return the report just produced")
	}
	if a.Recorder().Dumps() != 0 {
		t.Fatal("clean audit must not dump")
	}
	// The pass must have emitted exactly one audit span.
	n := 0
	for _, sp := range hub.Trace.SpansSince(0) {
		if sp.Kind == telemetry.SpanAudit {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want 1 audit span, got %d", n)
	}
}

func TestBlackholeDetected(t *testing.T) {
	v, sw, _ := buildLine(t)
	v.LFTs[sw[1]].Set(11, ib.DropPort) // s1 drops its own CA's LID
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindBlackhole)] != 1 {
		t.Fatalf("want exactly 1 blackhole (deduped by origin), got %+v", rep)
	}
	if !strings.Contains(rep.Violations[0].Detail, "DropPort") {
		t.Fatalf("detail should name the drop: %+v", rep.Violations[0])
	}
	if a.Recorder().Dumps() != 1 {
		t.Fatalf("violation must trigger a dump, got %d", a.Recorder().Dumps())
	}
}

func TestDownPortAndMissingLFTAreBlackholes(t *testing.T) {
	v, sw, _ := buildLine(t)
	v.Topo.Node(sw[0]).Ports[1].Up = false // s0's inter-switch link goes down
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindBlackhole)] == 0 {
		t.Fatalf("down egress port must be a blackhole: %+v", rep)
	}

	v2, sw2, _ := buildLine(t)
	delete(v2.LFTs, sw2[1])
	a2, _ := newAuditor(t)
	rep2 := a2.Run(v2, ScopeFast)
	if rep2.ByKind[string(KindBlackhole)] == 0 {
		t.Fatalf("missing LFT must be a blackhole: %+v", rep2)
	}
}

func TestLoopDetected(t *testing.T) {
	v, sw, _ := buildLine(t)
	v.LFTs[sw[1]].Set(11, 1) // s1 bounces c1's LID back to s0 -> ping-pong
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindLoop)] == 0 {
		t.Fatalf("want a forwarding loop, got %+v", rep)
	}
}

func TestMisrouteDetected(t *testing.T) {
	v, sw, _ := buildLine(t)
	v.LFTs[sw[0]].Set(11, 2) // s0 sends c1's LID to c0 instead
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindMisroute)] == 0 {
		t.Fatalf("want a misroute, got %+v", rep)
	}
}

func TestStaleEntryDetected(t *testing.T) {
	v, sw, _ := buildLine(t)
	v.LFTs[sw[0]].Set(40, 1) // forwarding entry for a LID nobody owns
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindStaleEntry)] != 1 {
		t.Fatalf("want 1 stale entry, got %+v", rep)
	}
}

func TestLIDConflictsDetected(t *testing.T) {
	v, _, cas := buildLine(t)
	v.VMs = []VMBinding{
		{Name: "vm-a", LID: 10, Hyp: cas[1]}, // LID 10 belongs to c0, not c1
		{Name: "vm-b", LID: 11, Hyp: cas[1]}, // correct
		{Name: "vm-c", LID: 11, Hyp: cas[1]}, // duplicate claim on 11
	}
	a, _ := newAuditor(t)
	rep := a.Run(v, ScopeFast)
	if rep.ByKind[string(KindLIDConflict)] != 2 {
		t.Fatalf("want 2 lid conflicts (wrong owner + duplicate), got %+v", rep)
	}
}

func TestViolationCapKeepsExactCounts(t *testing.T) {
	v, sw, _ := buildLine(t)
	for l := ib.LID(100); l < 120; l++ {
		v.LFTs[sw[0]].Set(l, 1) // 20 stale entries
	}
	a := New(telemetry.NewHub(), nil, Config{MaxViolations: 5})
	rep := a.Run(v, ScopeFast)
	if rep.Total != 20 || len(rep.Violations) != 5 || !rep.Truncated {
		t.Fatalf("cap: total=%d kept=%d truncated=%v", rep.Total, len(rep.Violations), rep.Truncated)
	}
	if a.ViolationsTotal() != 20 {
		t.Fatalf("counter must count all violations, got %d", a.ViolationsTotal())
	}
}

// buildSquare wires the four-switch ring used by the transition test:
// s[i] port 1 -> s[i+1] port 2, CA i on port 3 of s[i], CA LIDs 10..13.
func buildSquare(t *testing.T) (*topology.Topology, [4]topology.NodeID, [4]topology.NodeID) {
	t.Helper()
	topo := topology.New("square")
	var sw, ca [4]topology.NodeID
	for i := 0; i < 4; i++ {
		sw[i] = topo.AddSwitch(4, "")
	}
	for i := 0; i < 4; i++ {
		ca[i] = topo.AddCA("")
		if err := topo.Connect(sw[i], 1, sw[(i+1)%4], 2); err != nil {
			t.Fatal(err)
		}
		if err := topo.Connect(ca[i], 1, sw[i], 3); err != nil {
			t.Fatal(err)
		}
	}
	return topo, sw, ca
}

// TestTransientCDGCycle reproduces section VI-C in miniature: Rold routes
// LID 12 clockwise s0->s1->s2 and LID 13 clockwise s1->s2->s3; Rnew routes
// LID 10 clockwise s2->s3->s0 and LID 11 clockwise s3->s0->s1. Each CDG is
// acyclic on its own, but the union closes the ring of clockwise channel
// dependencies and deadlocks.
func TestTransientCDGCycle(t *testing.T) {
	topo, sw, ca := buildSquare(t)
	nodeOf := func(l ib.LID) topology.NodeID {
		if l >= 10 && l <= 13 {
			return ca[l-10]
		}
		return topology.NoNode
	}
	dlids := []ib.LID{10, 11, 12, 13}

	lft := func(sets map[topology.NodeID][][2]int) map[topology.NodeID]*ib.LFT {
		out := map[topology.NodeID]*ib.LFT{}
		for n, entries := range sets {
			l := ib.NewLFT(16)
			for _, e := range entries {
				l.Set(ib.LID(e[0]), ib.PortNum(e[1]))
			}
			out[n] = l
		}
		return out
	}
	old := lft(map[topology.NodeID][][2]int{
		sw[0]: {{12, 1}},
		sw[1]: {{12, 1}, {13, 1}},
		sw[2]: {{12, 3}, {13, 1}},
		sw[3]: {{13, 3}},
	})
	target := lft(map[topology.NodeID][][2]int{
		sw[2]: {{10, 1}},
		sw[3]: {{10, 1}, {11, 1}},
		sw[0]: {{10, 3}, {11, 1}},
		sw[1]: {{11, 3}},
	})

	a, _ := newAuditor(t)
	rep := a.CheckTransition(topo, old, target, nodeOf, dlids)
	if rep.ByKind[string(KindTransientCDG)] != 1 {
		t.Fatalf("want a transient CDG cycle, got %+v", rep)
	}
	if !strings.Contains(rep.Violations[0].Detail, "old cyclic=false, new cyclic=false") {
		t.Fatalf("both constituent CDGs must be acyclic alone: %s", rep.Violations[0].Detail)
	}
	if a.Recorder().Dumps() != 1 {
		t.Fatal("transition violation must dump")
	}

	// Sanity: the same distribution with old == target is cycle free.
	a2, _ := newAuditor(t)
	rep2 := a2.CheckTransition(topo, old, old, nodeOf, []ib.LID{12, 13})
	if rep2.Total != 0 {
		t.Fatalf("self-transition must be clean, got %+v", rep2)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(nil, "", 4)
	for i := 1; i <= 6; i++ {
		r.RecordMutation(Mutation{Op: "op", Status: 200, Gen: uint64(i)})
	}
	got := r.Entries()
	if len(got) != 4 {
		t.Fatalf("ring cap: want 4 entries, got %d", len(got))
	}
	for i, e := range got {
		if want := i + 3; e.Seq != want || e.Gen != uint64(want) {
			t.Fatalf("entry %d: want seq/gen %d, got %+v", i, want, e)
		}
	}
}

func TestRecorderDumpCarriesWindow(t *testing.T) {
	hub := telemetry.NewHub()
	dir := t.TempDir()
	r := NewRecorder(hub.Trace, dir, 0)

	before := hub.Trace.LastSpanID()
	sp := hub.Trace.Start(telemetry.SpanMigration, "vm-1")
	sp.End()
	hub.Trace.Eventf("migrate", "vm-1 moved")
	r.RecordMutation(Mutation{
		Op: "migrate", Name: "vm-1", RequestID: "req-000001", Status: 200, Gen: 3,
		SpanFrom: before + 1, SpanTo: hub.Trace.LastSpanID(),
	})

	d, err := r.Dump(&Report{Gen: 3, Scope: "fast", Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mutations, events int
	for _, e := range d.Entries {
		switch e.Kind {
		case "mutation":
			mutations++
			if e.RequestID != "req-000001" {
				t.Fatalf("mutation entry lost request id: %+v", e)
			}
		case "event":
			events++
		}
	}
	if mutations != 1 || events == 0 {
		t.Fatalf("dump window: mutations=%d events=%d", mutations, events)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump must carry the span window of its mutations")
	}
	found := false
	for _, s := range d.Spans {
		if s.Kind == telemetry.SpanMigration && s.Name == "vm-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("dump spans must include the mutation's migration span")
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want one flight dump on disk, got %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(files[0]), "gen3") || !strings.Contains(string(data), "req-000001") {
		t.Fatalf("dump file must be gen-stamped and carry the request id: %s", files[0])
	}
	if r.Dumps() != 1 || r.LastDump() != d {
		t.Fatalf("dump bookkeeping: dumps=%d", r.Dumps())
	}
}

// TestInstalledCDGDeadlock routes every CA LID clockwise around the square,
// closing the ring of channel dependencies: the full-scope pass must report
// the deadlock even though every LID is perfectly reachable. Switch LIDs
// ride along in the active set to pin the VL15 exemption — they are
// excluded from the CDG, so only the CA routes can (and do) form the cycle.
func TestInstalledCDGDeadlock(t *testing.T) {
	topo, sw, ca := buildSquare(t)
	v := &View{
		Topo:      topo,
		LFTs:      map[topology.NodeID]*ib.LFT{},
		NodeOfLID: map[ib.LID]topology.NodeID{},
	}
	for i := 0; i < 4; i++ {
		v.NodeOfLID[ib.LID(1+i)] = sw[i]
		v.NodeOfLID[ib.LID(10+i)] = ca[i]
		v.ActiveLIDs = append(v.ActiveLIDs, ib.LID(1+i), ib.LID(10+i))
	}
	for i := 0; i < 4; i++ {
		l := ib.NewLFT(16)
		for j := 0; j < 4; j++ {
			if j == i {
				l.Set(ib.LID(10+j), 3) // local CA
				continue
			}
			l.Set(ib.LID(1+j), 1)  // other switches: clockwise
			l.Set(ib.LID(10+j), 1) // other CAs: clockwise
		}
		v.LFTs[sw[i]] = l
	}

	a, _ := newAuditor(t)
	if rep := a.Run(v, ScopeFast); rep.Total != 0 {
		t.Fatalf("fast scope must skip the CDG: %+v", rep.Violations)
	}
	rep := a.Run(v, ScopeFull)
	if rep.ByKind[string(KindDeadlock)] != 1 || rep.Total != 1 {
		t.Fatalf("want exactly 1 deadlock violation, got %+v", rep)
	}
	if !strings.Contains(rep.Violations[0].Detail, "cycle") {
		t.Fatalf("deadlock detail should describe the cycle: %s", rep.Violations[0].Detail)
	}
}
