package audit

import (
	"fmt"

	"ibvsim/internal/cdg"
	"ibvsim/internal/ib"
	"ibvsim/internal/topology"
)

// View is the immutable fabric state one audit pass checks. The control
// plane builds it from its copy-on-write snapshot; tests build it by hand.
// Nothing in a View is mutated by the auditor, so a View may be shared
// across concurrent passes.
type View struct {
	Topo *topology.Topology
	Gen  uint64
	// LFTs holds the programmed forwarding table of each switch. A missing
	// or nil entry means the switch forwards nothing.
	LFTs map[topology.NodeID]*ib.LFT
	// LFTOf, when non-nil, overrides LFTs lookups. Sharded control planes
	// set it to the SM's live (atomically published, immutable) active
	// tables so an op-scoped pass needs no per-run map materialisation.
	LFTOf func(topology.NodeID) *ib.LFT
	// NodeOfLID maps every owned LID (base and extra/VF) to its node. An
	// op-scoped (ScopeReach) view may carry only the LIDs it audits.
	NodeOfLID map[ib.LID]topology.NodeID
	// ActiveLIDs are the destinations whose reachability the audit proves:
	// switch LIDs, PF base LIDs and VF LIDs with a VM behind them — or,
	// for an op-scoped pass, just the LID columns one mutation touched.
	ActiveLIDs []ib.LID
	// VMs are the control plane's VM→(LID, hypervisor) bindings.
	VMs []VMBinding
}

// lft resolves one switch's table through LFTOf or the LFTs map.
func (v *View) lft(sw topology.NodeID) *ib.LFT {
	if v.LFTOf != nil {
		return v.LFTOf(sw)
	}
	return v.LFTs[sw]
}

// provenanceOf returns the write stamp of the LFT block holding (sw, dlid),
// or nil when the switch has no table or the block was never stamped.
func (v *View) provenanceOf(sw topology.NodeID, dlid ib.LID) *ib.Provenance {
	lft := v.lft(sw)
	if lft == nil {
		return nil
	}
	return lft.ProvenanceOf(dlid)
}

// NodeOf implements cdg.LFTRoutes for the view's LID map.
func (v *View) NodeOf(l ib.LID) topology.NodeID {
	if n, ok := v.NodeOfLID[l]; ok {
		return n
	}
	return topology.NoNode
}

// SwitchRoute implements cdg.LFTRoutes over the view's LFT clones.
func (v *View) SwitchRoute(sw topology.NodeID, dlid ib.LID) ib.PortNum {
	lft := v.lft(sw)
	if lft == nil {
		return ib.DropPort
	}
	return lft.Get(dlid)
}

// describe labels a node for violation detail.
func describe(t *topology.Topology, id topology.NodeID) string {
	if n := t.Node(id); n != nil && n.Desc != "" {
		return fmt.Sprintf("%s(%d)", n.Desc, id)
	}
	return fmt.Sprintf("node(%d)", id)
}

// swState classifies what happens to a packet for one destination LID once
// it is inside a given switch, following the programmed next hops.
type swState struct {
	kind   Kind            // KindBlackhole / KindLoop / KindMisroute, or "" for delivers
	origin topology.NodeID // switch where the fault originates
	msg    string          // detail recorded at the originating switch
}

const stateVisiting = Kind("__visiting") // DFS grey marker, never reported

// checkReachability proves invariant family (a): for every active
// destination LID, every switch a packet can enter the fabric at forwards
// it hop-by-hop to the owning node — no drops (blackhole), no forwarding
// loops, no delivery to the wrong CA (misroute).
//
// Per destination the switch graph is functional (one next hop per switch),
// so a memoised DFS classifies all switches in O(#switches) and the pass
// overall is O(#LIDs × #switches).
func checkReachability(v *View, c *collector) {
	// The fabric entry switches of the nodes that source traffic: a CA
	// injects at its leaf switch, a switch sources SMPs at itself. Distinct
	// entry switches are what the DFS classifies, so deduplicating here
	// (many CAs share one leaf) shrinks the per-destination loop from
	// O(#nodes) to O(#switches) without changing the violation set — every
	// path to a CA destination transits its leaf, so the destination's own
	// entry switch is classified either way.
	entrySet := map[topology.NodeID]bool{}
	for _, dlid := range v.ActiveLIDs {
		node, ok := v.NodeOfLID[dlid]
		if !ok || v.Topo.Node(node) == nil {
			continue
		}
		if v.Topo.Node(node).IsSwitch() {
			entrySet[node] = true
		} else if leaf := v.Topo.LeafSwitchOf(node); leaf != topology.NoNode {
			entrySet[leaf] = true
		}
	}
	entries := make([]topology.NodeID, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}

	state := map[topology.NodeID]swState{}
	for _, dlid := range v.ActiveLIDs {
		dst, ok := v.NodeOfLID[dlid]
		if !ok || v.Topo.Node(dst) == nil {
			c.addf(KindStaleEntry, dlid, "", "active LID %d owned by no node", dlid)
			continue
		}
		clear(state)
		reported := map[topology.NodeID]bool{} // one violation per (dlid, origin)
		for _, entry := range entries {
			st := classify(v, dlid, dst, entry, state)
			if st.kind == "" || reported[st.origin] {
				continue
			}
			reported[st.origin] = true
			c.add(Violation{
				Kind:       st.kind,
				LID:        uint16(dlid),
				Node:       describe(v.Topo, st.origin),
				Detail:     fmt.Sprintf("LID %d (dst %s): %s", dlid, describe(v.Topo, dst), st.msg),
				Provenance: v.provenanceOf(st.origin, dlid),
			})
		}
	}
}

// classify walks one switch's forwarding of dlid with memoisation. The
// returned state is terminal (never stateVisiting): a back edge into a grey
// switch classifies the whole tail as a forwarding loop.
func classify(v *View, dlid ib.LID, dst, sw topology.NodeID, state map[topology.NodeID]swState) swState {
	if sw == dst {
		return swState{}
	}
	if st, ok := state[sw]; ok {
		if st.kind == stateVisiting {
			st = swState{kind: KindLoop, origin: sw,
				msg: fmt.Sprintf("forwarding loop through switch %s", describe(v.Topo, sw))}
			state[sw] = st
		}
		return st
	}
	state[sw] = swState{kind: stateVisiting}

	st := func() swState {
		lft := v.lft(sw)
		if lft == nil {
			return swState{kind: KindBlackhole, origin: sw, msg: "switch has no programmed LFT"}
		}
		out := lft.Get(dlid)
		if out == ib.DropPort {
			return swState{kind: KindBlackhole, origin: sw, msg: "LFT entry is DropPort"}
		}
		node := v.Topo.Node(sw)
		if int(out) >= len(node.Ports) {
			return swState{kind: KindBlackhole, origin: sw,
				msg: fmt.Sprintf("LFT routes out nonexistent port %d", out)}
		}
		port := node.Ports[out]
		if port.Peer == topology.NoNode || !port.Up {
			return swState{kind: KindBlackhole, origin: sw,
				msg: fmt.Sprintf("LFT routes out down/unconnected port %d", out)}
		}
		if port.Peer == dst {
			return swState{}
		}
		peer := v.Topo.Node(port.Peer)
		if !peer.IsSwitch() {
			return swState{kind: KindMisroute, origin: sw,
				msg: fmt.Sprintf("delivered to wrong CA %s", describe(v.Topo, port.Peer))}
		}
		return classify(v, dlid, dst, port.Peer, state)
	}()
	state[sw] = st
	return st
}

// checkStaleEntries proves the forwarding half of invariant family (b):
// every non-drop forwarding entry must point at a LID somebody owns;
// anything else is a leaked route (e.g. left behind by a migration). It
// walks every switch × every LID and therefore needs a complete NodeOfLID
// map — op-scoped (ScopeReach) passes skip it.
func checkStaleEntries(v *View, c *collector) {
	for _, sw := range v.Topo.Switches() {
		lft := v.lft(sw)
		if lft == nil {
			continue
		}
		top := ib.LID(lft.NumBlocks() * ib.LFTBlockSize)
		for l := ib.LID(0); l < top; l++ {
			if lft.Get(l) == ib.DropPort {
				continue
			}
			if _, ok := v.NodeOfLID[l]; !ok {
				c.add(Violation{
					Kind: KindStaleEntry,
					LID:  uint16(l),
					Node: describe(v.Topo, sw),
					Detail: fmt.Sprintf("switch %s forwards LID %d, which no node owns",
						describe(v.Topo, sw), l),
					Provenance: lft.ProvenanceOf(l),
				})
			}
		}
	}
}

// checkBindings proves the addressing half of invariant family (b): each
// VM's LID must be owned by its hypervisor, and no two VMs may claim the
// same LID.
func checkBindings(v *View, c *collector) {
	byLID := map[ib.LID]string{}
	for _, vm := range v.VMs {
		if prev, dup := byLID[vm.LID]; dup {
			c.addf(KindLIDConflict, vm.LID, "",
				"VMs %q and %q both claim LID %d", prev, vm.Name, vm.LID)
		}
		byLID[vm.LID] = vm.Name
		owner, ok := v.NodeOfLID[vm.LID]
		if !ok {
			c.addf(KindLIDConflict, vm.LID, "",
				"VM %q claims LID %d, which is not in the LID map", vm.Name, vm.LID)
			continue
		}
		if owner != vm.Hyp {
			c.addf(KindLIDConflict, vm.LID, describe(v.Topo, owner),
				"VM %q on hypervisor %s claims LID %d, owned by %s",
				vm.Name, describe(v.Topo, vm.Hyp), vm.LID, describe(v.Topo, owner))
		}
	}
}

// checkInstalledCDG proves invariant family (c) for the steady state: the
// CDG induced by the installed routing of the data traffic must be acyclic
// (Dally & Seitz). The transient variant for in-flight distributions is
// CheckTransition.
//
// Only CA-owned destination LIDs enter the graph: switch-destined traffic
// is in-band management riding VL15, which has dedicated credits and is
// exempt from data-VL credit deadlock — and routes to switch LIDs (e.g.
// spine to spine through a leaf) legally violate up/down ordering, so
// including them would flag every fat-tree as deadlocked.
func checkInstalledCDG(v *View, c *collector) {
	g := cdg.BuildSwitchCDG(v.Topo, v, dataLIDs(v.Topo, v.ActiveLIDs, v.NodeOf))
	if cyc := g.FindCycle(); cyc != nil {
		c.add(Violation{
			Kind:   KindDeadlock,
			Detail: fmt.Sprintf("installed routing CDG has a cycle: %s", cycleString(cyc)),
		})
	}
}

// dataLIDs filters a destination set down to CA-owned LIDs — the ones whose
// traffic occupies data VLs and participates in credit deadlock.
func dataLIDs(t *topology.Topology, lids []ib.LID, nodeOf func(ib.LID) topology.NodeID) []ib.LID {
	out := make([]ib.LID, 0, len(lids))
	for _, l := range lids {
		n := t.Node(nodeOf(l))
		if n != nil && !n.IsSwitch() {
			out = append(out, l)
		}
	}
	return out
}

func cycleString(cyc []cdg.Channel) string {
	s := ""
	for i, ch := range cyc {
		if i > 0 {
			s += " -> "
		}
		s += ch.String()
	}
	return s
}
