package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ibvsim/internal/telemetry"
)

// Entry is one flight-recorder ring slot: either a tracer event or a
// control-plane mutation summary.
type Entry struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"` // "event" | "mutation"

	// event fields
	Category string `json:"category,omitempty"`
	Msg      string `json:"msg,omitempty"`

	// mutation fields
	Op        string `json:"op,omitempty"`
	Name      string `json:"name,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Status    int    `json:"status,omitempty"`
	Gen       uint64 `json:"generation,omitempty"`
	SpanFrom  int    `json:"span_from,omitempty"` // first span ID the mutation emitted
	SpanTo    int    `json:"span_to,omitempty"`   // last span ID the mutation emitted
}

// Mutation summarises one control-plane operation for the recorder.
type Mutation struct {
	Op        string
	Name      string
	RequestID string
	Status    int
	Gen       uint64
	SpanFrom  int // first span ID emitted by the operation (LastSpanID before + 1)
	SpanTo    int // last span ID emitted (LastSpanID after)
}

// Dump is the black-box snapshot written when an audit violation fires: the
// retained entry ring plus the telemetry spans covering the retained
// mutations, so the violation arrives with the window that caused it. Meta
// carries caller-attached replay context (the chaos runner records the
// campaign name, seed and step there), File the on-disk path when the
// recorder has a directory.
type Dump struct {
	Seq     int                  `json:"dump_seq"`
	File    string               `json:"file,omitempty"`
	Meta    map[string]string    `json:"meta,omitempty"`
	Reason  *Report              `json:"reason"`
	Entries []Entry              `json:"entries"`
	Spans   []telemetry.SpanView `json:"spans,omitempty"`
}

// DefaultRecorderCap is the default ring size (entries retained).
const DefaultRecorderCap = 512

// maxDumpSpans bounds the span window attached to one dump when no
// mutation bracket is available.
const maxDumpSpans = 1024

// dumpFileSeq numbers dump files process-wide. Per-recorder counters are
// not enough: two recorders sharing one directory (or a recorder recreated
// after a restart) both start at dump 1 and would overwrite each other's
// flight-0001 file when their violations land close together — within the
// old timestamped scheme, in the same second.
var dumpFileSeq atomic.Int64

// Recorder is the flight recorder: a fixed-size ring of recent tracer
// events and mutation summaries. It is safe for concurrent use.
type Recorder struct {
	tr *telemetry.Tracer

	mu           sync.Mutex
	cap          int
	buf          []Entry // ring, oldest first once full
	start        int     // index of oldest entry when len(buf) == cap
	seq          int
	lastEventSeq int // high-water mark of tracer events already ingested
	dir          string
	dumps        int
	lastDump     *Dump
	meta         map[string]string
}

// NewRecorder returns a recorder ingesting events from tr (may be nil).
// dir, when non-empty, is where violation dumps are written as JSON files;
// it is created on first dump. capEntries <= 0 means DefaultRecorderCap.
func NewRecorder(tr *telemetry.Tracer, dir string, capEntries int) *Recorder {
	if capEntries <= 0 {
		capEntries = DefaultRecorderCap
	}
	return &Recorder{tr: tr, cap: capEntries, dir: dir}
}

// push appends one entry to the ring. Caller holds r.mu.
func (r *Recorder) push(e Entry) {
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// syncEvents ingests tracer events newer than the high-water mark. Caller
// holds r.mu.
func (r *Recorder) syncEvents() {
	if r.tr == nil {
		return
	}
	for _, ev := range r.tr.EventsSince(r.lastEventSeq) {
		if ev.Seq > r.lastEventSeq {
			r.lastEventSeq = ev.Seq
		}
		r.push(Entry{Kind: "event", Category: ev.Category, Msg: ev.Msg})
	}
}

// RecordMutation appends a mutation summary, first ingesting any tracer
// events the mutation produced so the ring interleaves them in order.
func (r *Recorder) RecordMutation(m Mutation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncEvents()
	r.push(Entry{
		Kind: "mutation",
		Op:   m.Op, Name: m.Name, RequestID: m.RequestID,
		Status: m.Status, Gen: m.Gen,
		SpanFrom: m.SpanFrom, SpanTo: m.SpanTo,
	})
}

// entries returns the ring oldest-first. Caller holds r.mu.
func (r *Recorder) entries() []Entry {
	out := make([]Entry, 0, len(r.buf))
	if len(r.buf) < r.cap {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.start:]...)
	return append(out, r.buf[:r.start]...)
}

// Entries returns a copy of the retained ring, oldest first.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncEvents()
	return r.entries()
}

// SetMeta attaches (or, with an empty value, removes) one replay-context
// key carried by every subsequent dump. The scenario engine keeps
// "campaign", "seed" and "step" current here so a violation dump names the
// exact replay coordinates.
func (r *Recorder) SetMeta(key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if value == "" {
		delete(r.meta, key)
		return
	}
	if r.meta == nil {
		r.meta = map[string]string{}
	}
	r.meta[key] = value
}

// Dumps returns how many dumps have been taken.
func (r *Recorder) Dumps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// LastDump returns the most recent dump, or nil.
func (r *Recorder) LastDump() *Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastDump
}

// Dump snapshots the ring and the span window of the retained mutations
// into a Dump, keeps it in memory, and — when the recorder has a directory
// — writes it to disk as flight-NNNN-genG-sSSSSSS.json, where SSSSSS is a
// process-wide monotonic sequence so concurrent recorders sharing a
// directory can never collide. Returns the dump; the disk write error (if
// any) is returned but the in-memory dump always succeeds.
func (r *Recorder) Dump(reason *Report) (*Dump, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncEvents()
	entries := r.entries()

	// Span window: from the first span of the oldest retained mutation
	// through the newest span. With no retained mutation (e.g. a cadence
	// audit before any traffic) fall back to the last maxDumpSpans spans.
	var spans []telemetry.SpanView
	if r.tr != nil {
		from := -1
		for _, e := range entries {
			if e.Kind == "mutation" && e.SpanFrom > 0 {
				from = e.SpanFrom
				break
			}
		}
		if from < 0 {
			if last := r.tr.LastSpanID(); last > maxDumpSpans {
				from = last - maxDumpSpans + 1
			} else {
				from = 1
			}
		}
		spans = r.tr.SpansSince(from - 1)
		if len(spans) > maxDumpSpans {
			spans = spans[len(spans)-maxDumpSpans:]
		}
	}

	r.dumps++
	d := &Dump{Seq: r.dumps, Reason: reason, Entries: entries, Spans: spans}
	if len(r.meta) > 0 {
		d.Meta = make(map[string]string, len(r.meta))
		for k, v := range r.meta {
			d.Meta[k] = v
		}
	}
	r.lastDump = d
	if r.dir == "" {
		return d, nil
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return d, err
	}
	d.File = filepath.Join(r.dir,
		fmt.Sprintf("flight-%04d-gen%d-s%06d.json", r.dumps, reason.Gen, dumpFileSeq.Add(1)))
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return d, err
	}
	return d, os.WriteFile(d.File, data, 0o644)
}
