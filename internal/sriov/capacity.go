package sriov

import (
	"fmt"

	"ibvsim/internal/ib"
)

// CapacityPlan evaluates the LID-budget arithmetic of section V-A/V-B for a
// subnet design.
type CapacityPlan struct {
	VFsPerHypervisor int
	Switches         int // physical switches (each consumes one LID)
	OtherNodes       int // dedicated SM nodes, routers, storage heads, ...
}

// LIDsPerHypervisor returns the LIDs one hypervisor consumes under the
// prepopulated model: one for the PF (shared with the vSwitch) plus one per
// VF.
func (p CapacityPlan) LIDsPerHypervisor() int { return 1 + p.VFsPerHypervisor }

// MaxHypervisorsPrepopulated returns how many hypervisors fit in the
// unicast LID space under prepopulated LIDs, after switches and other
// LID-consuming nodes are subtracted. With no switches and 16 VFs this is
// the paper's floor(49151/17) = 2891.
func (p CapacityPlan) MaxHypervisorsPrepopulated() int {
	avail := ib.UnicastLIDCount - p.Switches - p.OtherNodes
	if avail <= 0 {
		return 0
	}
	return avail / p.LIDsPerHypervisor()
}

// MaxVMsPrepopulated is the matching VM ceiling (2891*16 = 46256 in the
// paper's example).
func (p CapacityPlan) MaxVMsPrepopulated() int {
	return p.MaxHypervisorsPrepopulated() * p.VFsPerHypervisor
}

// MaxActiveVMsDynamic returns the ceiling on *simultaneously running* VMs
// under dynamic assignment given a number of hypervisors: the total VF
// count no longer bounds the subnet, but active VMs + physical nodes still
// must fit the unicast space (section V-B).
func (p CapacityPlan) MaxActiveVMsDynamic(hypervisors int) int {
	avail := ib.UnicastLIDCount - p.Switches - p.OtherNodes - hypervisors
	if avail < 0 {
		return 0
	}
	max := hypervisors * p.VFsPerHypervisor
	if max > avail {
		return avail
	}
	return max
}

// InitialPathLIDsPrepopulated returns how many LIDs the initial path
// computation must cover under prepopulated LIDs (every VF routed even with
// zero VMs running).
func (p CapacityPlan) InitialPathLIDsPrepopulated(hypervisors int) int {
	return p.Switches + p.OtherNodes + hypervisors*p.LIDsPerHypervisor()
}

// InitialPathLIDsDynamic returns the same figure under dynamic assignment
// with a given number of already-running VMs.
func (p CapacityPlan) InitialPathLIDsDynamic(hypervisors, runningVMs int) int {
	return p.Switches + p.OtherNodes + hypervisors + runningVMs
}

// Validate rejects impossible plans.
func (p CapacityPlan) Validate() error {
	if p.VFsPerHypervisor < 1 {
		return fmt.Errorf("sriov: plan needs >= 1 VF per hypervisor")
	}
	if p.VFsPerHypervisor > 126 {
		return fmt.Errorf("sriov: %d VFs exceeds the adapter limit of 126", p.VFsPerHypervisor)
	}
	if p.Switches < 0 || p.OtherNodes < 0 {
		return fmt.Errorf("sriov: negative node counts")
	}
	return nil
}
