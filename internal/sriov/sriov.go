// Package sriov models the two InfiniBand SR-IOV architectures the paper
// contrasts (section IV): the Shared Port model that shipped in the
// Mellanox drivers, and the vSwitch model the paper argues for, in both of
// its proposed flavours (prepopulated LIDs, section V-A, and dynamic LID
// assignment, section V-B).
//
// The package captures the *addressing* semantics — which LID/GUID/GID
// triple a virtual function exposes, what happens to those addresses on
// migration, and who may speak on QP0 — plus the LID-capacity arithmetic of
// section V-A. The network-side consequences (LFT updates, SMP counts) live
// in internal/core.
package sriov

import (
	"fmt"

	"ibvsim/internal/ib"
	"ibvsim/internal/topology"
)

// Model selects the SR-IOV architecture of an HCA.
type Model uint8

const (
	// SharedPort: PF and VFs share one LID and the QP0/QP1 pair; VFs get
	// dedicated GUIDs/GIDs only. VMs cannot run an SM (QP0 filtered) and
	// cannot keep their LID across migration.
	SharedPort Model = iota + 1
	// VSwitchPrepopulated: every VF is a complete vHCA with its own LID,
	// assigned when the subnet boots whether or not a VM uses it.
	VSwitchPrepopulated
	// VSwitchDynamic: every VF is a complete vHCA whose LID is allocated
	// when a VM is created and freed when it is destroyed.
	VSwitchDynamic
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SharedPort:
		return "shared-port"
	case VSwitchPrepopulated:
		return "vswitch-prepopulated"
	case VSwitchDynamic:
		return "vswitch-dynamic"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// IsVSwitch reports whether the model gives each VF its own LID.
func (m Model) IsVSwitch() bool { return m == VSwitchPrepopulated || m == VSwitchDynamic }

// Addresses is the triple every IB endpoint carries (section II-B).
type Addresses struct {
	LID  ib.LID
	GUID ib.GUID
	GID  ib.GID
}

// VF is one virtual function of an SR-IOV HCA.
type VF struct {
	Index    int
	GUID     ib.GUID // the vGUID currently programmed (migrates with a VM)
	LID      ib.LID  // own LID in vSwitch models; 0 under Shared Port
	Attached bool    // attached to a running VM
}

// HCA is an SR-IOV capable adapter on a hypervisor.
type HCA struct {
	Model  Model
	Node   topology.NodeID // the physical CA in the fabric
	Prefix ib.GIDPrefix

	PFGUID ib.GUID
	PFLID  ib.LID

	VFs []VF
}

// NewHCA creates an HCA with the given number of VFs. VF vGUIDs are derived
// from the PF GUID (pfGUID | vf index + 1), the scheme alias-GUID support
// commonly uses.
func NewHCA(model Model, node topology.NodeID, pfGUID ib.GUID, pfLID ib.LID, numVFs int) (*HCA, error) {
	if numVFs < 1 {
		return nil, fmt.Errorf("sriov: need at least one VF, got %d", numVFs)
	}
	if numVFs > 126 {
		// ConnectX-3 supports up to 126 VFs (section V-A, footnote 2).
		return nil, fmt.Errorf("sriov: %d VFs exceeds the 126-VF adapter limit", numVFs)
	}
	h := &HCA{
		Model:  model,
		Node:   node,
		Prefix: ib.DefaultGIDPrefix,
		PFGUID: pfGUID,
		PFLID:  pfLID,
	}
	for i := 0; i < numVFs; i++ {
		h.VFs = append(h.VFs, VF{
			Index: i,
			GUID:  pfGUID + ib.GUID(i+1),
		})
	}
	return h, nil
}

// NumVFs returns the number of virtual functions.
func (h *HCA) NumVFs() int { return len(h.VFs) }

// FreeVF returns the index of the lowest unattached VF, or -1.
func (h *HCA) FreeVF() int {
	for i := range h.VFs {
		if !h.VFs[i].Attached {
			return i
		}
	}
	return -1
}

// AttachedCount returns how many VFs are bound to VMs, without allocating.
// Shard snapshots call it per hypervisor after every mutation.
func (h *HCA) AttachedCount() int {
	n := 0
	for i := range h.VFs {
		if h.VFs[i].Attached {
			n++
		}
	}
	return n
}

// AttachedVFs returns the indices of VFs bound to VMs.
func (h *HCA) AttachedVFs() []int {
	var out []int
	for i := range h.VFs {
		if h.VFs[i].Attached {
			out = append(out, i)
		}
	}
	return out
}

// VFAddresses returns the address triple a VM sees through the given VF.
// Under Shared Port the LID is the PF's (the root of the migration problem:
// the LID cannot follow the VM); under vSwitch it is the VF's own.
func (h *HCA) VFAddresses(vf int) (Addresses, error) {
	if vf < 0 || vf >= len(h.VFs) {
		return Addresses{}, fmt.Errorf("sriov: no VF %d on HCA %d", vf, h.Node)
	}
	v := &h.VFs[vf]
	lid := v.LID
	if h.Model == SharedPort {
		lid = h.PFLID
	}
	return Addresses{
		LID:  lid,
		GUID: v.GUID,
		GID:  ib.MakeGID(h.Prefix, v.GUID),
	}, nil
}

// PFAddresses returns the physical function's address triple.
func (h *HCA) PFAddresses() Addresses {
	return Addresses{LID: h.PFLID, GUID: h.PFGUID, GID: ib.MakeGID(h.Prefix, h.PFGUID)}
}

// QP0Allowed reports whether an endpoint using the given function may send
// SMPs on QP0. Shared Port discards all VF SMPs toward QP0 (section IV-A),
// which is why an SM cannot run inside a VM there; vSwitch VFs are full
// vHCAs.
func (h *HCA) QP0Allowed(vf int) bool {
	if vf < 0 { // the PF itself
		return true
	}
	return h.Model.IsVSwitch()
}

// Attach marks a VF as bound to a VM. For VSwitchDynamic the caller must
// have set the VF's LID first (SetVFLID); prepopulated VFs already carry
// one.
func (h *HCA) Attach(vf int) error {
	if vf < 0 || vf >= len(h.VFs) {
		return fmt.Errorf("sriov: no VF %d", vf)
	}
	if h.VFs[vf].Attached {
		return fmt.Errorf("sriov: VF %d already attached", vf)
	}
	if h.Model.IsVSwitch() && h.VFs[vf].LID == ib.LIDUnassigned {
		return fmt.Errorf("sriov: vSwitch VF %d has no LID", vf)
	}
	h.VFs[vf].Attached = true
	return nil
}

// Detach unbinds a VF from its VM.
func (h *HCA) Detach(vf int) error {
	if vf < 0 || vf >= len(h.VFs) {
		return fmt.Errorf("sriov: no VF %d", vf)
	}
	if !h.VFs[vf].Attached {
		return fmt.Errorf("sriov: VF %d not attached", vf)
	}
	h.VFs[vf].Attached = false
	return nil
}

// SetVFLID programs a VF's LID (the SM does this through a PortInfo Set on
// the vHCA). Shared Port VFs cannot hold LIDs.
func (h *HCA) SetVFLID(vf int, lid ib.LID) error {
	if vf < 0 || vf >= len(h.VFs) {
		return fmt.Errorf("sriov: no VF %d", vf)
	}
	if h.Model == SharedPort {
		return fmt.Errorf("sriov: shared-port VFs share the PF LID; cannot set LID %d on VF %d", lid, vf)
	}
	h.VFs[vf].LID = lid
	return nil
}

// SetVFGUID programs a VF's vGUID (migrates with the VM).
func (h *HCA) SetVFGUID(vf int, guid ib.GUID) error {
	if vf < 0 || vf >= len(h.VFs) {
		return fmt.Errorf("sriov: no VF %d", vf)
	}
	h.VFs[vf].GUID = guid
	return nil
}

// LIDsConsumed returns how many LIDs this HCA occupies in the subnet under
// its model: 1 for Shared Port (and for the vSwitch PF, which shares the
// vSwitch's LID), plus one per LID-holding VF.
func (h *HCA) LIDsConsumed() int {
	n := 1 // the PF; the vSwitch itself shares the PF LID (section V-A)
	for i := range h.VFs {
		if h.VFs[i].LID != ib.LIDUnassigned {
			n++
		}
	}
	return n
}
