package sriov

import (
	"strings"
	"testing"

	"ibvsim/internal/ib"
)

func TestModelStringAndKind(t *testing.T) {
	if SharedPort.String() != "shared-port" ||
		VSwitchPrepopulated.String() != "vswitch-prepopulated" ||
		VSwitchDynamic.String() != "vswitch-dynamic" {
		t.Error("model stringers")
	}
	if !strings.Contains(Model(99).String(), "99") {
		t.Error("unknown model stringer")
	}
	if SharedPort.IsVSwitch() || !VSwitchPrepopulated.IsVSwitch() || !VSwitchDynamic.IsVSwitch() {
		t.Error("IsVSwitch")
	}
}

func TestNewHCAValidation(t *testing.T) {
	if _, err := NewHCA(SharedPort, 1, 0x100, 5, 0); err == nil {
		t.Error("0 VFs should fail")
	}
	if _, err := NewHCA(SharedPort, 1, 0x100, 5, 127); err == nil {
		t.Error("127 VFs should exceed the ConnectX-3 limit")
	}
	h, err := NewHCA(SharedPort, 1, 0x100, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVFs() != 16 {
		t.Errorf("NumVFs = %d", h.NumVFs())
	}
	// Derived vGUIDs are distinct and PF-relative.
	if h.VFs[0].GUID != 0x101 || h.VFs[15].GUID != 0x110 {
		t.Errorf("vGUIDs = %v, %v", h.VFs[0].GUID, h.VFs[15].GUID)
	}
}

func TestSharedPortAddressing(t *testing.T) {
	h, _ := NewHCA(SharedPort, 1, 0x100, 42, 4)
	a, err := h.VFAddresses(2)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1: same LID as the PF, own GID.
	if a.LID != 42 {
		t.Errorf("shared-port VF LID = %d, want PF LID 42", a.LID)
	}
	if a.GUID != 0x103 {
		t.Errorf("VF GUID = %v", a.GUID)
	}
	if a.GID != ib.MakeGID(ib.DefaultGIDPrefix, 0x103) {
		t.Errorf("VF GID = %v", a.GID)
	}
	pf := h.PFAddresses()
	if pf.LID != 42 || pf.GUID != 0x100 {
		t.Errorf("PF addresses = %+v", pf)
	}
	if _, err := h.VFAddresses(9); err == nil {
		t.Error("out-of-range VF should fail")
	}
	// Shared Port cannot set VF LIDs.
	if err := h.SetVFLID(0, 77); err == nil {
		t.Error("SetVFLID under shared port should fail")
	}
}

func TestVSwitchAddressing(t *testing.T) {
	h, _ := NewHCA(VSwitchPrepopulated, 1, 0x200, 10, 3)
	for i := 0; i < 3; i++ {
		if err := h.SetVFLID(i, ib.LID(11+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fig. 2: every VF has its own LID.
	a, _ := h.VFAddresses(1)
	if a.LID != 12 {
		t.Errorf("vSwitch VF LID = %d, want 12", a.LID)
	}
	if h.LIDsConsumed() != 4 {
		t.Errorf("LIDsConsumed = %d, want 4 (PF + 3 VFs; vSwitch shares PF LID)", h.LIDsConsumed())
	}
}

func TestQP0Filtering(t *testing.T) {
	sp, _ := NewHCA(SharedPort, 1, 1, 1, 2)
	vs, _ := NewHCA(VSwitchDynamic, 2, 1, 2, 2)
	// Section IV-A: "an SM cannot run inside a VM" under Shared Port.
	if sp.QP0Allowed(0) {
		t.Error("shared-port VF must not reach QP0")
	}
	if !sp.QP0Allowed(-1) {
		t.Error("PF always reaches QP0")
	}
	if !vs.QP0Allowed(0) {
		t.Error("vSwitch VF is a full vHCA and reaches QP0")
	}
}

func TestAttachDetachLifecycle(t *testing.T) {
	h, _ := NewHCA(VSwitchDynamic, 1, 0x1, 1, 2)
	// Dynamic VF without a LID cannot attach.
	if err := h.Attach(0); err == nil {
		t.Error("attach without LID should fail")
	}
	h.SetVFLID(0, 50)
	if err := h.Attach(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(0); err == nil {
		t.Error("double attach should fail")
	}
	if got := h.FreeVF(); got != 1 {
		t.Errorf("FreeVF = %d, want 1", got)
	}
	if got := h.AttachedVFs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("AttachedVFs = %v", got)
	}
	if err := h.Detach(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(0); err == nil {
		t.Error("double detach should fail")
	}
	if err := h.Attach(5); err == nil || h.Detach(5) == nil {
		t.Error("out-of-range attach/detach should fail")
	}
	h.SetVFLID(1, 51)
	h.Attach(0)
	h.Attach(1)
	if h.FreeVF() != -1 {
		t.Error("full HCA should report no free VF")
	}
	// Shared-port attach works without LIDs.
	sp, _ := NewHCA(SharedPort, 1, 0x1, 1, 1)
	if err := sp.Attach(0); err != nil {
		t.Error(err)
	}
}

func TestSetVFGUID(t *testing.T) {
	h, _ := NewHCA(VSwitchDynamic, 1, 0x1, 1, 1)
	if err := h.SetVFGUID(0, 0xbeef); err != nil {
		t.Fatal(err)
	}
	a, _ := h.VFAddresses(0)
	if a.GUID != 0xbeef {
		t.Error("vGUID not programmed")
	}
	if err := h.SetVFGUID(7, 1); err == nil {
		t.Error("out-of-range vGUID should fail")
	}
}

func TestCapacityPlanPaperNumbers(t *testing.T) {
	// Section V-A: "16 VFs per hypervisor ... each hypervisor consumes 17
	// LIDs ... floor(49151/17) = 2891 ... 2891*16 = 46256".
	p := CapacityPlan{VFsPerHypervisor: 16}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.LIDsPerHypervisor(); got != 17 {
		t.Errorf("LIDsPerHypervisor = %d, want 17", got)
	}
	if got := p.MaxHypervisorsPrepopulated(); got != 2891 {
		t.Errorf("MaxHypervisors = %d, want 2891", got)
	}
	if got := p.MaxVMsPrepopulated(); got != 46256 {
		t.Errorf("MaxVMs = %d, want 46256", got)
	}
}

func TestCapacityPlanWithInfrastructure(t *testing.T) {
	// "These numbers are actually even smaller since each switch ...
	// consume LIDs as well."
	base := CapacityPlan{VFsPerHypervisor: 16}
	infra := CapacityPlan{VFsPerHypervisor: 16, Switches: 648, OtherNodes: 2}
	if infra.MaxHypervisorsPrepopulated() >= base.MaxHypervisorsPrepopulated() {
		t.Error("infrastructure LIDs must reduce hypervisor capacity")
	}
	full := CapacityPlan{VFsPerHypervisor: 16, Switches: ib.UnicastLIDCount}
	if full.MaxHypervisorsPrepopulated() != 0 || full.MaxVMsPrepopulated() != 0 {
		t.Error("saturated subnet should fit zero hypervisors")
	}
}

func TestCapacityDynamicVsPrepopulated(t *testing.T) {
	// Section V-B: dynamic assignment has no cap on total VFs; active VMs
	// plus physical nodes must still fit the LID space.
	p := CapacityPlan{VFsPerHypervisor: 16, Switches: 100}
	hyp := 4000 // more than the prepopulated ceiling
	if p.MaxHypervisorsPrepopulated() >= hyp {
		t.Fatal("test premise: hyp must exceed prepopulated capacity")
	}
	active := p.MaxActiveVMsDynamic(hyp)
	if active <= 0 {
		t.Fatal("dynamic model should still run VMs")
	}
	if active != ib.UnicastLIDCount-100-hyp {
		t.Errorf("active VM cap = %d, want LID-bounded %d", active, ib.UnicastLIDCount-100-hyp)
	}
	// Few hypervisors: bounded by VF count instead.
	if got := p.MaxActiveVMsDynamic(10); got != 160 {
		t.Errorf("VF-bounded active VMs = %d, want 160", got)
	}
	if got := p.MaxActiveVMsDynamic(ib.UnicastLIDCount); got != 0 {
		t.Errorf("over-saturated = %d, want 0", got)
	}
}

func TestInitialPathLIDs(t *testing.T) {
	// Section V-B: dynamic boot routes ~3000 LIDs, prepopulated ~49000+
	// for the same 2891-hypervisor example.
	p := CapacityPlan{VFsPerHypervisor: 16}
	pre := p.InitialPathLIDsPrepopulated(2891)
	dyn := p.InitialPathLIDsDynamic(2891, 0)
	if pre != 2891*17 {
		t.Errorf("prepopulated initial LIDs = %d", pre)
	}
	if dyn != 2891 {
		t.Errorf("dynamic initial LIDs = %d", dyn)
	}
	if pre <= dyn*16 {
		t.Errorf("prepopulated (%d) should dwarf dynamic (%d)", pre, dyn)
	}
}

func TestCapacityPlanValidate(t *testing.T) {
	bad := []CapacityPlan{
		{VFsPerHypervisor: 0},
		{VFsPerHypervisor: 127},
		{VFsPerHypervisor: 4, Switches: -1},
		{VFsPerHypervisor: 4, OtherNodes: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should be invalid", i)
		}
	}
}
