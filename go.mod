module ibvsim

go 1.22
